module Attr = Schema.Attr
open Sql.Ast

type analyzer =
  | Algorithm1
  | Fd_closure

type outcome = {
  applied : bool;
  rule : string;
  citation : string option;
  justification : string;
  result : Sql.Ast.query;
}

(* Paper result justifying each rule, keyed by the (stable) rule name. *)
let citation_of_rule = function
  | "distinct-removal (Theorem 1)" -> Some "Theorem 1"
  | "group-by removal (section 8 extension)" -> Some "section 8 (future work)"
  | "subquery-to-join (Theorem 2 / Corollary 1)" ->
    Some "Theorem 2 / Corollary 1"
  | "join-to-subquery (section 6)" -> Some "section 6"
  | "predicate pruning (table constraints)" -> Some "section 2.1"
  | "join-elimination (inclusion dependencies)" ->
    Some "section 8 (future work, after King)"
  | "intersect-to-exists (Theorem 3 / Corollary 2)" ->
    Some "Theorem 3 / Corollary 2"
  | "except-to-not-exists (section 5.3 extension)" ->
    Some "section 5.3 (extension)"
  | _ -> None

let unchanged ?citation rule justification result =
  let citation =
    match citation with Some _ as c -> c | None -> citation_of_rule rule
  in
  { applied = false; rule; citation; justification; result }

let applied ?citation rule justification result =
  let citation =
    match citation with Some _ as c -> c | None -> citation_of_rule rule
  in
  { applied = true; rule; citation; justification; result }

(* The stable rule names carry a parenthesized annotation ("distinct-removal
   (Theorem 1)"); in a trace node the citation field plays that role, so we
   render the bare rule name to avoid printing the provenance twice. *)
let bare_rule_name rule =
  match String.rindex_opt rule '(' with
  | Some i when i > 0 && rule.[i - 1] = ' ' && rule.[String.length rule - 1] = ')'
    -> String.sub rule 0 (i - 1)
  | _ -> rule

let node_of_outcome ?(children = []) (o : outcome) =
  Trace.node ~rule:(bare_rule_name o.rule)
    ?citation:o.citation
    ~verdict:(if o.applied then Trace.Applied else Trace.Not_applied)
    ~facts:
      (if o.applied then [ ("result", Sql.Pretty.query o.result) ] else [])
    ~children o.justification

let spec_is_unique ?cache ?trace analyzer cat spec =
  match analyzer with
  | Algorithm1 -> Algorithm1.distinct_is_redundant ?cache ?trace cat spec
  | Fd_closure -> Fd_analysis.distinct_is_redundant ?cache ?trace cat spec

(* A query-spec operand is duplicate-free if it says DISTINCT or if the
   uniqueness condition holds for its projection. *)
let operand_is_duplicate_free ?cache cat spec =
  spec.distinct = Distinct || Fd_analysis.distinct_is_redundant ?cache cat spec

(* ---- name hygiene ---- *)

(* Rename correlation names in [sub] that clash with [used]; returns the
   renamed spec. Column references are rewritten along. *)
let freshen_names ~used (sub : query_spec) =
  let used = ref used in
  let renames =
    List.filter_map
      (fun f ->
        let name = from_name f in
        if List.mem name !used then begin
          let rec pick i =
            let cand = Printf.sprintf "%s_%d" name i in
            if List.mem cand !used then pick (i + 1) else cand
          in
          let fresh = pick 1 in
          used := fresh :: !used;
          Some (name, fresh)
        end
        else begin
          used := name :: !used;
          None
        end)
      sub.from
  in
  if renames = [] then sub
  else
    let map_attr (a : Attr.t) =
      match List.assoc_opt a.Attr.rel renames with
      | Some fresh -> Attr.make ~rel:fresh ~name:a.Attr.name
      | None -> a
    in
    {
      sub with
      from =
        List.map
          (fun f ->
            match List.assoc_opt (from_name f) renames with
            | Some fresh -> { f with corr = Some fresh }
            | None -> f)
          sub.from;
      where = map_cols map_attr sub.where;
    }

(* Qualify every column reference: inner FROM list first, then the outer
   one (mirroring the engine's innermost-first scoping), so that merged
   queries contain no ambiguous bare references. A nested [EXISTS] opens a
   further scope — its own FROM list shadows the enclosing ones, so its
   local columns must not be resolved against (or reported as unknown in)
   the outer product schema. *)
let qualify_pred cat ~inner ~outer p =
  let scopes0 =
    List.map (Fd.Derive.resolver cat)
      (inner :: (if outer = [] then [] else [ outer ]))
  in
  let resolve scopes a =
    let rec go = function
      | [] -> raise (Fd.Derive.Unknown_column a)
      | r :: rest ->
        (match r a with
         | qualified -> qualified
         | exception Fd.Derive.Unknown_column _ -> go rest)
    in
    go scopes
  in
  let rec go scopes p =
    let rec scalar = function
      | Col a -> Col (resolve scopes a)
      | (Const _ | Host _) as s -> s
      | Agg (fn, Some s) -> Agg (fn, Some (scalar s))
      | Agg (_, None) as s -> s
    in
    match p with
    | Ptrue | Pfalse -> p
    | Cmp (op, a, b) -> Cmp (op, scalar a, scalar b)
    | Between (a, lo, hi) -> Between (scalar a, scalar lo, scalar hi)
    | In_list (a, vs) -> In_list (scalar a, vs)
    | Is_null a -> Is_null (scalar a)
    | Is_not_null a -> Is_not_null (scalar a)
    | And (a, b) -> And (go scopes a, go scopes b)
    | Or (a, b) -> Or (go scopes a, go scopes b)
    | Not a -> Not (go scopes a)
    | Exists sub ->
      Exists { sub with where = go (Fd.Derive.resolver cat sub.from :: scopes) sub.where }
  in
  go scopes0 p

let qualify_scalar cat ~from s =
  let resolve = Fd.Derive.resolver cat from in
  match s with
  | Col a when not (String.equal a.Attr.name "*") -> Col (resolve a)
  | (Col _ | Const _ | Host _ | Agg _) as s -> s

(* Explicit projection of every column of [from], in product-schema order —
   what [SELECT *] denotes before the FROM list changes. *)
let expand_star cat (from : from_item list) =
  List.concat_map
    (fun (f : from_item) ->
      let def = Catalog.find_exn cat f.table in
      let corr = from_name f in
      List.map
        (fun (a : Attr.t) -> Col (Attr.make ~rel:corr ~name:a.Attr.name))
        (Schema.Relschema.attrs def.Catalog.tbl_schema))
    from

let has_aggregate = function
  | Star -> false
  | Cols cs ->
    List.exists (function Agg _ -> true | Col _ | Const _ | Host _ -> false) cs

(* ---- Theorem 2 condition ---- *)

(* Can the block [sub] (already name-qualified) match at most one tuple of
   each of its tables per outer row? Outer columns count as constants. *)
let inner_block_unique cat ~outer_rels (sub : query_spec) =
  let clauses = Logic.Norm.usable_clauses sub.where in
  let eqs =
    List.filter_map
      (function [ lit ] -> Logic.Equalities.of_literal lit | _ -> None)
      clauses
  in
  let is_outer (a : Attr.t) = List.mem a.Attr.rel outer_rels in
  let seed =
    List.fold_left
      (fun acc -> function
        | Logic.Equalities.Type1 (a, _) -> if is_outer a then Attr.Set.add a acc else acc
        | Logic.Equalities.Type2 (a, b) ->
          let acc = if is_outer a then Attr.Set.add a acc else acc in
          if is_outer b then Attr.Set.add b acc else acc)
      Attr.Set.empty eqs
  in
  let v = Logic.Equalities.closure seed eqs in
  List.for_all
    (fun (f : from_item) ->
      let def = Catalog.find_exn cat f.table in
      let corr = from_name f in
      let keys = Catalog.candidate_keys def in
      keys <> []
      && List.exists
           (fun k ->
             List.for_all
               (fun a -> Attr.Set.mem a v)
               (Catalog.key_attrs ~corr k))
           keys)
    sub.from

(* ---- 5.1 unnecessary duplicate elimination ---- *)

let remove_redundant_distinct ?(analyzer = Algorithm1) ?cache ?trace cat query =
  let rule = "distinct-removal (Theorem 1)" in
  let citation = "Theorem 1" in
  let rec go = function
    | Spec q
      when q.distinct = Distinct && spec_is_unique ?cache ?trace analyzer cat q
      ->
      (Spec { q with distinct = All }, true)
    | Spec _ as q -> (q, false)
    | Setop (op, d, a, b) ->
      let a', ca = go a in
      let b', cb = go b in
      (Setop (op, d, a', b'), ca || cb)
  in
  let result, changed = go query in
  if changed then
    applied ~citation rule
      "the projection functionally determines a candidate key of every table"
      result
  else unchanged ~citation rule "uniqueness condition not established" query

(* ---- section 8 extension: unnecessary grouping ---- *)

(* If the grouping columns functionally determine a candidate key of every
   table, every group holds exactly one row: the GROUP BY can be dropped and
   the aggregates collapse (COUNT over a singleton group is 1; SUM / MIN /
   MAX / AVG of a singleton is the operand itself). *)
let remove_redundant_group_by cat query =
  let rule = "group-by removal (section 8 extension)" in
  match query with
  | Spec q when q.group_by <> [] -> begin
    let src = Fd.Derive.of_query_spec cat q in
    let resolve = Fd.Derive.resolver cat q.from in
    let group_attrs =
      List.filter_map
        (function Col a -> Some (resolve a) | Const _ | Host _ | Agg _ -> None)
        q.group_by
    in
    let closure =
      Fd.Fdset.closure src.Fd.Derive.src_fds (Attr.set_of_list group_attrs)
    in
    let singleton_groups =
      List.length group_attrs = List.length q.group_by
      && List.for_all
           (fun (_, keys) ->
             keys <> [] && List.exists (fun k -> Attr.Set.subset k closure) keys)
           src.Fd.Derive.src_keys
    in
    if not singleton_groups then
      unchanged rule "groups may hold several rows (grouping set is not a key)"
        query
    else begin
      let de_aggregate = function
        | Agg (Count, None) -> Some (Const (Sqlval.Value.Int 1))
        | Agg (Count, Some _) ->
          (* would need a NULL test (0 or 1); not expressible as a scalar *)
          None
        | Agg ((Sum | Min | Max | Avg), Some s) -> Some s
        | Agg ((Sum | Min | Max | Avg), None) -> None
        | (Col _ | Const _ | Host _) as s -> Some s
      in
      match q.select with
      | Star -> unchanged rule "SELECT * with GROUP BY is not supported" query
      | Cols cs ->
        let rewritten = List.map de_aggregate cs in
        if List.exists (fun o -> o = None) rewritten then
          unchanged rule
            "COUNT(column) over a singleton group needs a CASE expression"
            query
        else
          applied rule
            "every group holds exactly one row (the grouping columns \
             functionally determine a candidate key of every table)"
            (Spec
               {
                 q with
                 select = Cols (List.filter_map Fun.id rewritten);
                 group_by = [];
               })
    end
  end
  | Spec _ | Setop _ -> unchanged rule "no GROUP BY clause" query

(* ---- 5.2 subquery to join ---- *)

let subquery_to_join ?cache cat (q : query_spec) =
  let rule = "subquery-to-join (Theorem 2 / Corollary 1)" in
  let conjs = conjuncts q.where in
  let rec split acc = function
    | [] -> None
    | Exists sub :: rest -> Some (sub, List.rev_append acc rest)
    | c :: rest -> split (c :: acc) rest
  in
  match split [] conjs with
  | None -> unchanged rule "no positive existential subquery" (Spec q)
  | Some (sub, others) ->
    let outer_rels = List.map from_name q.from in
    (* resolve inner references before merging scopes *)
    let sub =
      { sub with where = qualify_pred cat ~inner:sub.from ~outer:q.from sub.where }
    in
    let sub = freshen_names ~used:outer_rels sub in
    let merged_where = conj (others @ conjuncts sub.where) in
    (* [SELECT *] must keep denoting the original FROM list's columns once
       the subquery's tables join it *)
    let select =
      match q.select with Star -> Cols (expand_star cat q.from) | Cols _ -> q.select
    in
    let merged from distinct =
      Spec { q with select; distinct; from = q.from @ from; where = merged_where }
    in
    (* With GROUP BY or aggregates only the at-most-one-match branch is
       sound: it leaves every group's contents intact, whereas collapsing
       extra matches with DISTINCT happens after aggregation — too late to
       undo the multiplicities the join fed into the aggregates. *)
    let grouped = q.group_by <> [] || has_aggregate q.select in
    if inner_block_unique cat ~outer_rels sub then
      applied rule
        "the subquery block matches at most one tuple per outer row \
         (a candidate key of every inner table is pinned)"
        (merged sub.from q.distinct)
    else if grouped then
      unchanged rule
        "subquery may match several tuples, which would skew the grouped \
         aggregates"
        (Spec q)
    else if q.distinct = Distinct then
      applied rule
        "projection is DISTINCT, so duplicates from extra matches collapse"
        (merged sub.from Distinct)
    else if
      operand_is_duplicate_free ?cache cat { q with where = conj others }
    then
      applied rule
        "outer block is duplicate-free (Corollary 1): join made DISTINCT"
        (merged sub.from Distinct)
    else
      unchanged rule
        "subquery may match several tuples and the outer block is not \
         duplicate-free"
        (Spec q)

(* ---- section 6: join to subquery ---- *)

let join_to_subquery cat (q : query_spec) =
  let rule = "join-to-subquery (section 6)" in
  if List.length q.from < 2 then
    unchanged rule "single-table FROM list" (Spec q)
  else if q.group_by <> [] || has_aggregate q.select then
    (* moving a table into EXISTS changes the multiplicities (and possibly
       the very columns) the grouping and aggregates consume *)
    unchanged rule "GROUP BY / aggregates pin the join's multiplicities" (Spec q)
  else begin
    (* qualify projection and predicate so that table usage is explicit *)
    let select =
      match q.select with
      | Star -> Star
      | Cols cs -> Cols (List.map (qualify_scalar cat ~from:q.from) cs)
    in
    let where = qualify_pred cat ~inner:q.from ~outer:[] q.where in
    match select with
    | Star -> unchanged rule "SELECT * references every table" (Spec q)
    | Cols cs ->
      let proj_rels = List.sort_uniq String.compare (List.concat_map rels_of_scalar cs) in
      let inner_from, outer_from =
        List.partition (fun f -> not (List.mem (from_name f) proj_rels)) q.from
      in
      if inner_from = [] then
        unchanged rule "every table contributes projection columns" (Spec q)
      else if outer_from = [] then
        unchanged rule "no table is referenced by the projection" (Spec q)
      else begin
        let inner_rels = List.map from_name inner_from in
        let inner_conjs, outer_conjs =
          List.partition
            (fun c ->
              List.exists (fun r -> List.mem r inner_rels) (rels_of_pred c))
            (conjuncts where)
        in
        let sub =
          Sql.Ast.plain_spec ~select:Star ~from:inner_from
            ~where:(conj inner_conjs) ()
        in
        let rewritten distinct =
          Spec
            (plain_spec ~distinct ~select ~from:outer_from
               ~where:(conj (outer_conjs @ [ Exists sub ]))
               ())
        in
        if q.distinct = Distinct then
          applied rule "DISTINCT projection: equivalence is unconditional"
            (rewritten Distinct)
        else if
          inner_block_unique cat ~outer_rels:(List.map from_name outer_from) sub
        then
          applied rule
            "the moved block matches at most one tuple per outer row \
             (Theorem 2)"
            (rewritten All)
        else
          unchanged rule
            "inner block may match several tuples for an ALL projection"
            (Spec q)
      end
  end

(* ---- section 8 extension: predicates implied by table constraints ---- *)

(* Paper section 2.1: any table constraint can be conjoined to a query
   without changing its result; the profitable converse deletes WHERE
   conjuncts the constraints already guarantee. 3VL safety: a CHECK passes
   when not-false, so on a NULLable column it can hold where the WHERE
   conjunct is unknown — the rewrite therefore requires the column to be
   NOT NULL. *)
let remove_implied_predicates cat (q : query_spec) =
  let rule = "predicate pruning (table constraints)" in
  let resolve = Fd.Derive.resolver cat q.from in
  let single_column c =
    let rec contains_exists = function
      | Exists _ -> true
      | And (a, b) | Or (a, b) -> contains_exists a || contains_exists b
      | Not a -> contains_exists a
      | _ -> false
    in
    if contains_exists c then None
    else
      let rec cols acc p =
        let of_scalar acc = function
          | Col a -> a :: acc
          | Const _ | Host _ -> acc
          | Agg _ -> acc
        in
        match p with
        | Ptrue | Pfalse -> acc
        | Cmp (_, a, b) -> of_scalar (of_scalar acc a) b
        | Between (a, b, c') -> of_scalar (of_scalar (of_scalar acc a) b) c'
        | In_list (a, _) | Is_null a | Is_not_null a -> of_scalar acc a
        | And (a, b) | Or (a, b) -> cols (cols acc a) b
        | Not a -> cols acc a
        | Exists _ -> acc
      in
      match
        List.sort_uniq Attr.compare
          (List.filter_map
             (fun a -> try Some (resolve a) with Fd.Derive.Unknown_column _ -> None)
             (cols [] c))
      with
      | [ a ] -> Some a
      | _ -> None
  in
  let implied_conjunct c =
    match single_column c with
    | None -> false
    | Some a -> begin
      match
        List.find_opt (fun f -> String.equal (from_name f) a.Attr.rel) q.from
      with
      | None -> false
      | Some f ->
        let def = Catalog.find_exn cat f.table in
        let not_null =
          match
            Schema.Relschema.find_index def.Catalog.tbl_schema
              (Attr.make ~rel:def.Catalog.tbl_name ~name:a.Attr.name)
          with
          | Some i ->
            not
              (Schema.Relschema.column_at def.Catalog.tbl_schema i)
                .Schema.Relschema.nullable
          | None | (exception Failure _) -> false
        in
        not_null
        &&
        let cstr =
          Logic.Implies.constraint_for ~col:a.Attr.name def.Catalog.tbl_checks
        in
        cstr <> Logic.Implies.unconstrained
        && Logic.Implies.implied cstr ~col:a.Attr.name c
    end
  in
  let kept, dropped =
    List.partition (fun c -> not (implied_conjunct c)) (conjuncts q.where)
  in
  if dropped = [] then
    unchanged rule "no conjunct is implied by the table constraints" (Spec q)
  else
    applied rule
      (Printf.sprintf "implied conjunct(s) removed: %s"
         (String.concat "; " (List.map Sql.Pretty.pred dropped)))
      (Spec { q with where = conj kept })

(* ---- section 8 extension: join elimination via inclusion dependencies ---- *)

(* King's join elimination, the paper's future-work item 2: a table joined
   only to supply existence can be dropped when a referential constraint
   guarantees exactly one match. Occurrence T is removable when:
   - no projection, grouping, or non-join condition references T;
   - the conditions on T are exactly equi-join conjuncts pairing some other
     occurrence F's columns with T's columns;
   - F's table declares a FOREIGN KEY on those columns referencing T's
     (the paired T-columns must be the referenced candidate key), and the
     FK columns are NOT NULL in F (otherwise the join would drop F rows
     with NULL references and elimination would keep them). *)
let eliminate_joins cat (q : query_spec) =
  let rule = "join-elimination (inclusion dependencies)" in
  let removable (spec : query_spec) (t_item : from_item) =
    let t = from_name t_item in
    let t_def = Catalog.find_exn cat t_item.table in
    let refs_t p = List.mem t (rels_of_pred p) in
    let scalar_refs_t s = List.mem t (rels_of_scalar s) in
    let select_refs =
      match spec.select with
      | Star -> true
      | Cols cs ->
        List.exists scalar_refs_t cs
        (* an unqualified or starred reference may cover T *)
        || List.exists
             (function
               | Col a -> String.equal a.Attr.name "*" && a.Attr.rel = ""
               | _ -> false)
             cs
    in
    if select_refs || List.exists scalar_refs_t spec.group_by then None
    else begin
      let conjs = conjuncts spec.where in
      let join_pair c =
        match Logic.Equalities.of_literal c with
        | Some (Logic.Equalities.Type2 (a, b)) ->
          if String.equal a.Attr.rel t && not (String.equal b.Attr.rel t) then
            Some (b, a.Attr.name)
          else if String.equal b.Attr.rel t && not (String.equal a.Attr.rel t)
          then Some (a, b.Attr.name)
          else None
        | _ -> None
      in
      let join_conjs, others = List.partition (fun c -> join_pair c <> None) conjs in
      if List.exists refs_t others then None
      else begin
        let pairs = List.filter_map join_pair join_conjs in
        match pairs with
        | [] -> None
        | (first, _) :: _ ->
          let f_rel = first.Attr.rel in
          if not (List.for_all (fun (fa, _) -> String.equal fa.Attr.rel f_rel) pairs)
          then None
          else begin
            match
              List.find_opt (fun fi -> String.equal (from_name fi) f_rel) spec.from
            with
            | None -> None
            | Some f_item ->
              let f_def = Catalog.find_exn cat f_item.table in
              let fk_matches (fk : Catalog.foreign_key) =
                String.equal fk.Catalog.fk_table t_def.Catalog.tbl_name
                &&
                match Catalog.resolve_fk cat fk with
                | exception Failure _ -> false
                | ref_cols ->
                  List.length pairs = List.length fk.Catalog.fk_cols
                  && List.for_all2
                       (fun fk_col ref_col ->
                         List.exists
                           (fun ((fa : Attr.t), t_name) ->
                             String.equal fa.Attr.name fk_col
                             && String.equal t_name ref_col)
                           pairs)
                       fk.Catalog.fk_cols ref_cols
                  (* the referenced columns must be a candidate key of T *)
                  && List.exists
                       (fun (k : Catalog.key) ->
                         List.sort String.compare k.Catalog.key_cols
                         = List.sort String.compare ref_cols)
                       t_def.Catalog.tbl_keys
                  (* FK columns NOT NULL in F *)
                  && List.for_all
                       (fun c ->
                         match
                           Schema.Relschema.find_index f_def.Catalog.tbl_schema
                             (Attr.make ~rel:f_def.Catalog.tbl_name ~name:c)
                         with
                         | Some i ->
                           not
                             (Schema.Relschema.column_at f_def.Catalog.tbl_schema i)
                               .Schema.Relschema.nullable
                         | None | (exception Failure _) -> false)
                       fk.Catalog.fk_cols
              in
              if List.exists fk_matches f_def.Catalog.tbl_foreign_keys then
                Some
                  {
                    spec with
                    from = List.filter (fun fi -> fi != t_item) spec.from;
                    where = conj others;
                  }
              else None
          end
      end
    end
  in
  let qualify spec =
    {
      spec with
      select =
        (match spec.select with
         | Star -> Star
         | Cols cs -> Cols (List.map (qualify_scalar cat ~from:spec.from) cs));
      where = qualify_pred cat ~inner:spec.from ~outer:[] spec.where;
      group_by = List.map (qualify_scalar cat ~from:spec.from) spec.group_by;
    }
  in
  let rec fixpoint spec eliminated =
    if List.length spec.from < 2 then (spec, eliminated)
    else
      match List.find_map (removable spec) spec.from with
      | Some spec' -> fixpoint spec' (eliminated + 1)
      | None -> (spec, eliminated)
  in
  if List.length q.from < 2 then
    unchanged rule "single-table FROM list" (Spec q)
  else begin
    let spec, eliminated = fixpoint (qualify q) 0 in
    if eliminated = 0 then
      unchanged rule "no table is joined purely through a referential key"
        (Spec q)
    else
      applied rule
        (Printf.sprintf
           "%d table(s) eliminated: the foreign key guarantees exactly one \
            match per row"
           eliminated)
        (Spec spec)
  end

(* ---- 5.3 intersection (and EXCEPT) to subquery ---- *)

(* Null-safe correlation predicate between the two operands' projection
   columns; plain equality when both sides are non-nullable (footnote 1). *)
let correlation_pred cat ~left ~right =
  let nullable_of from s =
    match s with
    | Col a ->
      let resolve = Fd.Derive.resolver cat from in
      let a = resolve a in
      let found = ref true in
      let nullable = ref true in
      (try
         let def = Catalog.find_exn cat
             (let f =
                List.find
                  (fun f -> String.equal (from_name f) a.Attr.rel)
                  from
              in
              f.table)
         in
         let i =
           Schema.Relschema.index_of def.Catalog.tbl_schema
             (Attr.make ~rel:def.Catalog.tbl_name ~name:a.Attr.name)
         in
         nullable := (Schema.Relschema.column_at def.Catalog.tbl_schema i).Schema.Relschema.nullable
       with Not_found | Failure _ -> found := false);
      if !found then !nullable else true
    | Const v -> Sqlval.Value.is_null v
    | Host _ | Agg _ -> true
  in
  let (lf, ls) = left and (rf, rs) = right in
  List.map2
    (fun x y ->
      if (not (nullable_of lf x)) && not (nullable_of rf y) then Cmp (Eq, x, y)
      else Or (And (Is_null x, Is_null y), Cmp (Eq, x, y)))
    ls rs

let setop_to_exists ?cache ~negate cat query =
  let rule =
    if negate then "except-to-not-exists (section 5.3 extension)"
    else "intersect-to-exists (Theorem 3 / Corollary 2)"
  in
  let build (l : query_spec) (r : query_spec) =
    match l.select, r.select with
    | Cols ls, Cols rs when List.length ls = List.length rs ->
      let ls = List.map (qualify_scalar cat ~from:l.from) ls in
      let l = { l with select = Cols ls } in
      let r = freshen_names ~used:(List.map from_name l.from) r in
      let rs' =
        match r.select with
        | Cols rs -> List.map (qualify_scalar cat ~from:r.from) rs
        | Star -> assert false
      in
      let corr =
        correlation_pred cat ~left:(l.from, ls) ~right:(r.from, rs')
      in
      let sub =
        plain_spec ~select:Star ~from:r.from
          ~where:(conj (conjuncts r.where @ corr))
          ()
      in
      let ex = if negate then Not (Exists sub) else Exists sub in
      Some (Spec { l with where = conj (conjuncts l.where @ [ ex ]) })
    | _ -> None
  in
  match query with
  | Setop (op, _, Spec l, Spec r)
    when (op = Intersect && not negate) || (op = Except && negate) ->
    if operand_is_duplicate_free ?cache cat l then begin
      match build l r with
      | Some result ->
        applied rule "left operand is duplicate-free (Theorem 3)" result
      | None ->
        unchanged rule "projection lists are not plain compatible columns" query
    end
    else if (not negate) && operand_is_duplicate_free ?cache cat r then begin
      (* INTERSECT commutes, so the unique operand can drive the probe *)
      match build r l with
      | Some result ->
        applied rule
          "right operand is duplicate-free (Corollary 2, operands swapped)"
          result
      | None ->
        unchanged rule "projection lists are not plain compatible columns" query
    end
    else unchanged rule "neither operand is provably duplicate-free" query
  | Setop _ | Spec _ ->
    unchanged rule "not a matching set operation on query specifications" query

let intersect_to_exists ?cache cat query = setop_to_exists ?cache ~negate:false cat query
let except_to_not_exists ?cache cat query = setop_to_exists ?cache ~negate:true cat query

(* ---- driver ---- *)

let apply_all ?(analyzer = Algorithm1) ?cache ?(trace = Trace.disabled) cat query =
  let outcomes = ref [] in
  let note ?children o =
    Trace.emitf trace (fun () -> node_of_outcome ?children o);
    if o.applied then outcomes := o :: !outcomes
  in
  let try_rewrite f q =
    let o = f q in
    note o;
    o.result
  in
  let q = try_rewrite (setop_to_exists ?cache ~negate:false cat) query in
  let q = try_rewrite (setop_to_exists ?cache ~negate:true cat) q in
  let q = try_rewrite (remove_redundant_group_by cat) q in
  let q =
    match q with
    | Spec spec -> try_rewrite (fun _ -> eliminate_joins cat spec) q
    | Setop _ -> q
  in
  let q =
    match q with
    | Spec spec -> try_rewrite (fun _ -> remove_implied_predicates cat spec) q
    | Setop _ -> q
  in
  (* unnest repeatedly: each application removes one EXISTS *)
  let rec unnest fuel q =
    if fuel = 0 then q
    else
      match q with
      | Spec spec ->
        let o = subquery_to_join ?cache cat spec in
        note o;
        if o.applied then unnest (fuel - 1) o.result else q
      | Setop _ -> q
  in
  let q = unnest 5 q in
  let q =
    (* carry the analyzer's own decision trace as children of the
       distinct-removal node: the rewrite's provenance is the analysis *)
    let analysis = Trace.child trace in
    let o = remove_redundant_distinct ~analyzer ?cache ~trace:analysis cat q in
    note ~children:(Trace.nodes analysis) o;
    o.result
  in
  (q, List.rev !outcomes)

let pp_outcome ppf o =
  Format.fprintf ppf "@[<v>%s: %s@,%s@,=> %s@]" o.rule
    (if o.applied then "APPLIED" else "not applied")
    o.justification
    (Sql.Pretty.query o.result)
