(** Semantic query rewrites built on the uniqueness condition
    (paper section 5, plus the section 6 join-to-subquery direction and the
    EXCEPT transformations the paper mentions but omits for space).

    Every rewrite returns a {!outcome} describing whether it applied and on
    what grounds; rewritten queries are bag-equivalent to the originals
    (property-tested against the execution engine in
    [test/test_rewrite.ml]). *)

type analyzer =
  | Algorithm1  (** the paper's Algorithm 1 *)
  | Fd_closure  (** FD-based closure test (detects strictly more cases) *)

type outcome = {
  applied : bool;
  rule : string;
  citation : string option;
      (** the paper result the rule rests on, e.g. ["Theorem 2 / Corollary 1"] *)
  justification : string;
  result : Sql.Ast.query;  (** the input when [applied = false] *)
}

(** A decision-trace node for a rule attempt — verdict
    [Applied]/[Not_applied], the justification as detail, the rewritten SQL
    as a fact, [~children] for the analyzer trace that licensed it. *)
val node_of_outcome : ?children:Trace.node list -> outcome -> Trace.node

(** {1 Section 5.1: unnecessary duplicate elimination} *)

(** Turn [SELECT DISTINCT] into [SELECT ALL] when the uniqueness condition
    (Theorem 1) holds; recurses into set-operation operands only to analyze,
    never to change their semantics. *)
val remove_redundant_distinct :
  ?analyzer:analyzer ->
  ?cache:Analysis_cache.t ->
  ?trace:Trace.t ->
  Catalog.t ->
  Sql.Ast.query ->
  outcome

(** {1 Section 8 extension: unnecessary grouping} *)

(** Drop a [GROUP BY] whose grouping columns functionally determine a
    candidate key of every table (each group then holds exactly one row):
    a star count becomes the literal [1] and [SUM]/[MIN]/[MAX]/[AVG] collapse
    to their operands. The dual of Theorem 1, using the same derived-FD
    machinery — the direction the paper's section 8 leaves as future work. *)
val remove_redundant_group_by : Catalog.t -> Sql.Ast.query -> outcome

(** {1 Section 5.2: subquery to join (Theorem 2, Corollary 1)} *)

(** Rewrite [R WHERE ... AND EXISTS (S WHERE Cs AND Crs)] as a join.
    Applies when:
    - the subquery block can match at most one [S] tuple per outer row
      (Theorem 2: some candidate key of every inner table is pinned by
      constants, host variables, or correlated outer columns) — the
      projection keeps its [ALL]; or
    - the outer block alone is duplicate-free (Corollary 1) or the query is
      already [DISTINCT] — the join is made [DISTINCT]. *)
val subquery_to_join :
  ?cache:Analysis_cache.t -> Catalog.t -> Sql.Ast.query_spec -> outcome

(** {1 Section 6: join to subquery (for navigational systems)} *)

(** Inverse direction: tables contributing no projection columns move into
    an [EXISTS] block. Applies under the same uniqueness condition
    (Theorem 2, [ALL] queries) or unconditionally for [DISTINCT] queries. *)
val join_to_subquery : Catalog.t -> Sql.Ast.query_spec -> outcome

(** {1 Section 8 extension: predicate pruning} *)

(** Remove WHERE conjuncts that the referenced table's CHECK constraints
    already guarantee (the converse of section 2.1's observation that table
    constraints can be conjoined freely). Restricted to single-column
    conjuncts over NOT NULL columns — on a nullable column a CHECK can pass
    (not-false) where the WHERE conjunct is unknown. *)
val remove_implied_predicates : Catalog.t -> Sql.Ast.query_spec -> outcome

(** {1 Section 8 extension: join elimination} *)

(** King's join elimination via inclusion dependencies (the paper's
    future-work item): drop a table occurrence reached only through
    equi-join conjuncts that realize a declared [FOREIGN KEY] onto one of
    its candidate keys, with [NOT NULL] referencing columns — the join then
    matches exactly one row and neither filters nor multiplies. Applies
    repeatedly until a fixpoint. *)
val eliminate_joins : Catalog.t -> Sql.Ast.query_spec -> outcome

(** {1 Section 5.3: intersection to subquery (Theorem 3, Corollary 2)} *)

(** Rewrite [Q1 INTERSECT [ALL] Q2] as [Q1' WHERE EXISTS (...)] with a
    null-safe correlation predicate ([(x IS NULL AND y IS NULL) OR x = y],
    simplified to [x = y] for non-nullable columns, cf. the paper's
    footnote 1). Applies when either operand is duplicate-free; prefers the
    left operand, else swaps (Corollary 2's symmetric case). *)
val intersect_to_exists :
  ?cache:Analysis_cache.t -> Catalog.t -> Sql.Ast.query -> outcome

(** [Q1 EXCEPT [ALL] Q2] to [NOT EXISTS] under the same conditions on the
    left operand (the extension the paper mentions in section 5.3). *)
val except_to_not_exists :
  ?cache:Analysis_cache.t -> Catalog.t -> Sql.Ast.query -> outcome

(** {1 Convenience} *)

(** Apply every enabled rewrite once, outermost first. Returns all outcomes
    that applied, with the final query. With [~trace], {e every} attempt —
    fired or refused — emits its decision node in application order, the
    distinct-removal node carrying the analyzer's trace as children. With
    [~cache], the uniqueness verdicts the rules rest on are memoized
    ({!Analysis_cache}); caching never changes which rules fire. *)
val apply_all :
  ?analyzer:analyzer ->
  ?cache:Analysis_cache.t ->
  ?trace:Trace.t ->
  Catalog.t ->
  Sql.Ast.query ->
  Sql.Ast.query * outcome list

val pp_outcome : Format.formatter -> outcome -> unit
