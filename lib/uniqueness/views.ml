module Attr = Schema.Attr
open Sql.Ast

exception Unsupported_view of string

let fail fmt = Format.kasprintf (fun s -> raise (Unsupported_view s)) fmt

(* product schema of a FROM list, columns qualified by correlation names *)
let product_schema cat (from : from_item list) =
  let schemas =
    List.map
      (fun (f : from_item) ->
        let def = Catalog.find_exn cat f.table in
        Schema.Relschema.rename_rel (from_name f) def.Catalog.tbl_schema)
      from
  in
  match schemas with
  | [] -> Schema.Relschema.make []
  | s :: rest -> List.fold_left Schema.Relschema.product s rest

(* ---- registration ---- *)

let register cat ~name (spec : query_spec) =
  let name = String.uppercase_ascii name in
  if Catalog.mem cat name then fail "%s is already defined" name;
  if spec.group_by <> [] then fail "views may not use GROUP BY";
  if hosts_of_query_spec spec <> [] then fail "views may not use host variables";
  let product = product_schema cat spec.from in
  let underlying_column (a : Attr.t) =
    Schema.Relschema.column_at product (Schema.Relschema.index_of product a)
  in
  let resolve = Fd.Derive.resolver cat spec.from in
  (* view column name -> underlying qualified attribute *)
  let columns =
    match spec.select with
    | Star ->
      List.map (fun (a : Attr.t) -> (a.Attr.name, a)) (Schema.Relschema.attrs product)
    | Cols cs ->
      List.concat_map
        (function
          | Col a when String.equal a.Attr.name "*" ->
            List.filter_map
              (fun (c : Attr.t) ->
                if String.equal c.Attr.rel a.Attr.rel then Some (c.Attr.name, c)
                else None)
              (Schema.Relschema.attrs product)
          | Col a ->
            let a = resolve a in
            [ (a.Attr.name, a) ]
          | Const _ | Host _ | Agg _ ->
            fail "view projections must be plain columns")
        cs
  in
  let seen = Hashtbl.create 8 in
  List.iter
    (fun (n, _) ->
      if Hashtbl.mem seen n then fail "duplicate view column %s" n;
      Hashtbl.add seen n ())
    columns;
  let view_schema =
    Schema.Relschema.make
      (List.map
         (fun (n, a) ->
           let c = underlying_column a in
           {
             Schema.Relschema.attr = Attr.make ~rel:name ~name:n;
             ctype = c.Schema.Relschema.ctype;
             nullable = c.Schema.Relschema.nullable;
           })
         columns)
  in
  (* derived key dependencies (paper section 3): candidate keys of the
     derived table, mapped onto the view's column names *)
  let analysis = Fd_analysis.analyze cat spec in
  let mapped_keys =
    List.filter_map
      (fun key ->
        let cols =
          List.filter_map
            (fun a ->
              List.find_map
                (fun (n, ua) -> if Attr.equal ua a then Some n else None)
                columns)
            (Attr.Set.elements key)
        in
        if List.length cols = Attr.Set.cardinal key then
          Some { Catalog.key_cols = cols; key_primary = false }
        else None)
      analysis.Fd_analysis.derived_keys
  in
  (* a DISTINCT view without a finer derived key is still a set: the full
     column list is a (derived) candidate key *)
  let keys =
    if spec.distinct = Distinct && mapped_keys = [] then
      [ { Catalog.key_cols = List.map fst columns; key_primary = false } ]
    else mapped_keys
  in
  Catalog.add cat
    {
      Catalog.tbl_name = name;
      tbl_schema = view_schema;
      tbl_keys = keys;
      tbl_checks = [];
      tbl_foreign_keys = [];
      tbl_view =
        Some
          {
            Catalog.vw_spec = spec;
            vw_columns = List.map (fun (n, a) -> (n, Col a)) columns;
          };
    }

let register_ddl cat ddl =
  let cv = Sql.Parser.parse_create_view ddl in
  register cat ~name:cv.cv_name cv.cv_query

(* ---- expansion (view merging) ---- *)

let rec map_scalar f = function
  | Col a -> Col (f a)
  | (Const _ | Host _) as s -> s
  | Agg (fn, Some s) -> Agg (fn, Some (map_scalar f s))
  | Agg (_, None) as s -> s

(* expand one view occurrence [v] inside [q]; [used] holds every correlation
   name that must not be captured (outer scopes included) *)
let rec expand_spec cat ~used (q : query_spec) : query_spec =
  let scope = used @ List.map from_name q.from in
  (* expand views inside EXISTS blocks first (their own FROM lists) *)
  let rec expand_exists p =
    match p with
    | Exists sub -> Exists (expand_spec cat ~used:scope sub)
    | And (a, b) -> And (expand_exists a, expand_exists b)
    | Or (a, b) -> Or (expand_exists a, expand_exists b)
    | Not a -> Not (expand_exists a)
    | Ptrue | Pfalse | Cmp _ | Between _ | In_list _ | Is_null _ | Is_not_null _
      -> p
  in
  let q = { q with where = expand_exists q.where } in
  let view_item =
    List.find_opt
      (fun (f : from_item) ->
        match Catalog.find cat f.table with
        | Some def -> Catalog.is_view def
        | None -> false)
      q.from
  in
  match view_item with
  | None -> q
  | Some v ->
    let def = Catalog.find_exn cat v.table in
    let info = Option.get def.Catalog.tbl_view in
    (* Recursively expand the definition with the column mapping as its
       select list: after expansion, the select scalars ARE the new mapping
       (this is what makes views-over-views compose). *)
    let vspec =
      expand_spec cat ~used:scope
        {
          info.Catalog.vw_spec with
          select = Cols (List.map snd info.Catalog.vw_columns);
        }
    in
    let expanded_mapping_scalars =
      match vspec.select with
      | Cols cs -> cs
      | Star -> assert false (* we just set Cols *)
    in
    (* dropping the view's DISTINCT is sound when it is provably redundant
       or when the consumer deduplicates anyway *)
    if
      vspec.distinct = Distinct
      && q.distinct <> Distinct
      && not (Fd_analysis.distinct_is_redundant cat { vspec with distinct = All })
    then
      fail
        "cannot merge DISTINCT view %s into a bag context (its duplicate \
         elimination is not provably redundant)"
        v.table;
    (* rename the view's internal correlation names away from the scope *)
    let clash = scope in
    let renames =
      List.filter_map
        (fun f ->
          let n = from_name f in
          if List.mem n clash then begin
            let rec pick i =
              let cand = Printf.sprintf "%s_%d" n i in
              if List.mem cand clash then pick (i + 1) else cand
            in
            Some (n, pick 1)
          end
          else None)
        vspec.from
    in
    let ren (a : Attr.t) =
      match List.assoc_opt a.Attr.rel renames with
      | Some fresh -> Attr.make ~rel:fresh ~name:a.Attr.name
      | None -> a
    in
    let vfrom =
      List.map
        (fun f ->
          match List.assoc_opt (from_name f) renames with
          | Some fresh -> { f with corr = Some fresh }
          | None -> f)
        vspec.from
    in
    let vwhere = map_cols ren vspec.where in
    let mapping =
      List.map2
        (fun (n, _) s -> (n, map_scalar ren s))
        info.Catalog.vw_columns expanded_mapping_scalars
    in
    (* qualify the outer query's references so view references are explicit,
       then substitute them by the mapped underlying columns. Resolution is
       lenient: references that do not resolve in this scope belong to inner
       EXISTS blocks (already expanded) and are left alone. *)
    let corr_v = from_name v in
    let resolve = Fd.Derive.resolver cat q.from in
    let subst (a : Attr.t) =
      let a =
        if String.equal a.Attr.name "*" then a
        else
          match resolve a with
          | resolved -> resolved
          | exception (Fd.Derive.Unknown_column _ | Failure _) -> a
      in
      if String.equal a.Attr.rel corr_v && not (String.equal a.Attr.name "*")
      then
        match List.assoc_opt a.Attr.name mapping with
        | Some (Col u) -> u
        | Some _ | None -> fail "unknown column %s of view %s" a.Attr.name v.table
      else a
    in
    let subst_scalar s =
      (* expand a qualified star over the view into its column list *)
      match s with
      | Col a when String.equal a.Attr.name "*" && String.equal a.Attr.rel corr_v
        ->
        `Many (List.map snd mapping)
      | s -> `One (map_scalar subst s)
    in
    let select =
      match q.select with
      | Star ->
        (* make the projection explicit before the view disappears *)
        let all = Schema.Relschema.attrs (product_schema cat q.from) in
        Cols
          (List.map
             (fun (a : Attr.t) ->
               if String.equal a.Attr.rel corr_v then
                 match List.assoc_opt a.Attr.name mapping with
                 | Some s -> s
                 | None -> fail "unknown column %s of view %s" a.Attr.name v.table
               else Col a)
             all)
      | Cols cs ->
        Cols
          (List.concat_map
             (fun s -> match subst_scalar s with `Many l -> l | `One s -> [ s ])
             cs)
    in
    let where = map_cols subst q.where in
    let group_by =
      List.concat_map
        (fun s -> match subst_scalar s with `Many l -> l | `One s -> [ s ])
        q.group_by
    in
    let order_by =
      List.concat_map
        (fun s -> match subst_scalar s with `Many l -> l | `One s -> [ s ])
        q.order_by
    in
    let merged =
      {
        distinct = q.distinct;
        select;
        from = List.filter (fun f -> f != v) q.from @ vfrom;
        where = conj (conjuncts where @ conjuncts vwhere);
        group_by;
        order_by;
      }
    in
    expand_spec cat ~used merged

let expand cat q = expand_spec cat ~used:[] q

let rec expand_query cat = function
  | Spec q -> Spec (expand cat q)
  | Setop (op, d, a, b) -> Setop (op, d, expand_query cat a, expand_query cat b)
