module Value = Sqlval.Value

type order = Key_order | Group_order

type config = {
  seed : int;
  rows : int;
  distinct_fraction : float;
  order : order;
}

let default =
  { seed = 7; rows = 100_000; distinct_fraction = 0.01; order = Key_order }

let ddl = "CREATE TABLE BULK (K INT NOT NULL, GRP INT, VAL INT, PRIMARY KEY (K))"
let catalog = Catalog.add_ddl Catalog.empty ddl

let groups cfg =
  max 1 (int_of_float (float_of_int cfg.rows *. cfg.distinct_fraction))

let generate cfg =
  let rng = Random.State.make [| 0x42554c4b; cfg.seed |] in
  let n_groups = groups cfg in
  let rows =
    List.init cfg.rows (fun i ->
        [| Value.Int (i + 1);
           Value.Int (Random.State.int rng n_groups);
           Value.Int (Random.State.int rng 1_000_000) |])
  in
  let db = Engine.Database.create catalog in
  (match cfg.order with
   | Key_order ->
     (* K is assigned increasing, so the natural order is the key order *)
     Engine.Database.load_sorted db "BULK" rows ~order:[ "K" ]
   | Group_order ->
     let sorted =
       List.sort (fun a b -> Value.compare_total a.(1) b.(1)) rows
     in
     Engine.Database.load_sorted db "BULK" sorted ~order:[ "GRP" ]);
  db

let key_query = "SELECT DISTINCT B.K FROM BULK B"
let group_query = "SELECT DISTINCT B.GRP FROM BULK B"

let bulk_db ?(seed = default.seed) ?(distinct_fraction = default.distinct_fraction)
    ?(order = default.order) ~rows () =
  generate { seed; rows; distinct_fraction; order }
