module Value = Sqlval.Value

type order = Key_order | Group_order

type config = {
  seed : int;
  rows : int;
  distinct_fraction : float;
  order : order;
}

let default =
  { seed = 7; rows = 100_000; distinct_fraction = 0.01; order = Key_order }

let ddl = "CREATE TABLE BULK (K INT NOT NULL, GRP INT, VAL INT, PRIMARY KEY (K))"
let catalog = Catalog.add_ddl Catalog.empty ddl

let groups cfg =
  max 1 (int_of_float (float_of_int cfg.rows *. cfg.distinct_fraction))

let generate cfg =
  let rng = Random.State.make [| 0x42554c4b; cfg.seed |] in
  let n_groups = groups cfg in
  let rows =
    List.init cfg.rows (fun i ->
        [| Value.Int (i + 1);
           Value.Int (Random.State.int rng n_groups);
           Value.Int (Random.State.int rng 1_000_000) |])
  in
  let db = Engine.Database.create catalog in
  (match cfg.order with
   | Key_order ->
     (* K is assigned increasing, so the natural order is the key order *)
     Engine.Database.load_sorted db "BULK" rows ~order:[ "K" ]
   | Group_order ->
     let sorted =
       List.sort (fun a b -> Value.compare_total a.(1) b.(1)) rows
     in
     Engine.Database.load_sorted db "BULK" sorted ~order:[ "GRP" ]);
  db

let key_query = "SELECT DISTINCT B.K FROM BULK B"
let group_query = "SELECT DISTINCT B.GRP FROM BULK B"

let bulk_db ?(seed = default.seed) ?(distinct_fraction = default.distinct_fraction)
    ?(order = default.order) ~rows () =
  generate { seed; rows; distinct_fraction; order }

(* ---- star schema (join experiments) ---- *)

let star_ddl =
  [ "CREATE TABLE DIM1 (K INT NOT NULL, ATTR INT, PRIMARY KEY (K))";
    "CREATE TABLE DIM2 (K INT NOT NULL, ATTR INT, PRIMARY KEY (K))";
    "CREATE TABLE FACT (ID INT NOT NULL, FK1 INT NOT NULL, FK2 INT NOT \
     NULL, VAL INT, PRIMARY KEY (ID), FOREIGN KEY (FK1) REFERENCES DIM1, \
     FOREIGN KEY (FK2) REFERENCES DIM2)" ]

let star_catalog = List.fold_left Catalog.add_ddl Catalog.empty star_ddl

(* Dimension cardinality sqrt(10 * rows): the DIM1 x DIM2 product is then
   ~10x the fact scan at every scale, so FROM-order (dimensions first)
   pays an unambiguous product penalty that cost-based ordering avoids. *)
let star_dims rows = max 2 (int_of_float (sqrt (10.0 *. float_of_int rows)))

let star_db ?(seed = default.seed) ~rows () =
  let rng = Random.State.make [| 0x53544152; seed |] in
  let dims = star_dims rows in
  let dim_rows =
    List.init dims (fun i ->
        [| Value.Int (i + 1); Value.Int (Random.State.int rng 1_000) |])
  in
  let fact_rows =
    List.init rows (fun i ->
        [| Value.Int (i + 1);
           Value.Int (1 + Random.State.int rng dims);
           Value.Int (1 + Random.State.int rng dims);
           Value.Int (Random.State.int rng 1_000_000) |])
  in
  let db = Engine.Database.create star_catalog in
  Engine.Database.load_sorted db "DIM1" dim_rows ~order:[ "K" ];
  Engine.Database.load_sorted db "DIM2" dim_rows ~order:[ "K" ];
  Engine.Database.load_sorted db "FACT" fact_rows ~order:[ "ID" ];
  db

let star_query =
  "SELECT F.ID, D1.ATTR, D2.ATTR FROM DIM1 D1, DIM2 D2, FACT F WHERE F.FK1 \
   = D1.K AND F.FK2 = D2.K"

(* ---- sorted pair (ORDER BY / merge-join experiments) ---- *)

let pair_ddl =
  [ "CREATE TABLE LHS (K INT NOT NULL, V INT, PRIMARY KEY (K))";
    "CREATE TABLE RHS (K INT NOT NULL, W INT, PRIMARY KEY (K))" ]

let pair_catalog = List.fold_left Catalog.add_ddl Catalog.empty pair_ddl

let pair_db ?(seed = default.seed) ~rows () =
  let rng = Random.State.make [| 0x50414952; seed |] in
  let mk () =
    List.init rows (fun i ->
        [| Value.Int (i + 1); Value.Int (Random.State.int rng 1_000_000) |])
  in
  let db = Engine.Database.create pair_catalog in
  Engine.Database.load_sorted db "LHS" (mk ()) ~order:[ "K" ];
  Engine.Database.load_sorted db "RHS" (mk ()) ~order:[ "K" ];
  db

let pair_query =
  "SELECT L.K, L.V, R.W FROM LHS L, RHS R WHERE L.K = R.K ORDER BY L.K"

let order_key_query = "SELECT B.K, B.GRP FROM BULK B ORDER BY B.K"
let order_group_query = "SELECT B.K, B.GRP FROM BULK B ORDER BY B.GRP"
