(** Bulk single-table instances for duplicate-elimination experiments.

    One table, [BULK (K INT NOT NULL PRIMARY KEY, GRP INT, VAL INT)],
    loaded through {!Engine.Database.load_sorted} so the physical order is
    verified and visible to the executor's order provenance:

    - [K] is a dense unique key (1..rows) — projecting it is the
      key-covered workload where Algorithm 1 answers YES and the elided
      strategy applies ({!key_query});
    - [GRP] draws from a pool of [rows * distinct_fraction] values —
      projecting it is the duplicate-heavy workload where duplicate
      elimination does real work ({!group_query}), with the duplicate
      selectivity dialed by [distinct_fraction].

    Generation is deterministic in [seed] (and independent of [order]: both
    physical orders hold the same bag of rows). *)

type order =
  | Key_order    (** rows loaded sorted on [K] (the natural assignment) *)
  | Group_order  (** rows loaded sorted on [GRP] — the regime where
                     sort-aware dedup of {!group_query} needs one row of
                     state *)

type config = {
  seed : int;
  rows : int;
  distinct_fraction : float;
      (** |distinct GRP| / rows; clamped so at least one group exists *)
  order : order;
}

val default : config

(** The [BULK] DDL and its parsed catalog. *)
val ddl : string

val catalog : Catalog.t

(** Number of distinct [GRP] values a config draws from. *)
val groups : config -> int

(** Build and load a database instance (order verified at load). *)
val generate : config -> Engine.Database.t

(** [SELECT DISTINCT B.K FROM BULK B] — key-covered: Algorithm 1 YES. *)
val key_query : string

(** [SELECT DISTINCT B.GRP FROM BULK B] — duplicate-heavy: Algorithm 1 no,
    covered by the physical order only under {!Group_order}. *)
val group_query : string

val bulk_db :
  ?seed:int ->
  ?distinct_fraction:float ->
  ?order:order ->
  rows:int ->
  unit ->
  Engine.Database.t

(** {1 Star schema}

    Join-experiment instances: [FACT (ID pk, FK1, FK2, VAL)] referencing
    [DIM1 (K pk, ATTR)] and [DIM2 (K pk, ATTR)]. Both dimensions hold
    {!star_dims} rows (about [sqrt (10 * rows)]), so the [DIM1 x DIM2]
    product is ~10x the fact scan at every scale: {!star_query} lists the
    dimensions first, making FROM-order execution pay that product while
    a cost-ordered plan starts at [FACT] and hash-joins each dimension
    with a unique build (its key [K] is the join column). Deterministic
    in [seed]. *)

val star_ddl : string list

val star_catalog : Catalog.t

(** Rows per dimension table for a given fact row count. *)
val star_dims : int -> int

val star_db : ?seed:int -> rows:int -> unit -> Engine.Database.t

(** [SELECT F.ID, D1.ATTR, D2.ATTR FROM DIM1 D1, DIM2 D2, FACT F WHERE
    F.FK1 = D1.K AND F.FK2 = D2.K] — FROM order forces a dimension
    product first; join-key columns cover each dimension's key. *)
val star_query : string

(** {1 Sorted pair}

    Order-dependency experiment instances: [LHS (K pk, V)] and
    [RHS (K pk, W)], both [rows] rows with the same dense key domain
    (every probe matches), both loaded through
    {!Engine.Database.load_sorted} on [K] so the physical order is
    verified and visible to order provenance. {!pair_query} joins them
    on the shared key and asks for [ORDER BY] on it — the regime where
    [Optimizer.Order_plan] certifies a merge join {e and} elides the
    sort. Deterministic in [seed]. *)

val pair_ddl : string list

val pair_catalog : Catalog.t

val pair_db : ?seed:int -> rows:int -> unit -> Engine.Database.t

(** [SELECT L.K, L.V, R.W FROM LHS L, RHS R WHERE L.K = R.K ORDER BY
    L.K] — both inputs sorted on the join key. *)
val pair_query : string

(** [SELECT B.K, B.GRP FROM BULK B ORDER BY B.K] — covered by the
    physical order under {!Key_order}: the sort is elidable. *)
val order_key_query : string

(** [SELECT B.K, B.GRP FROM BULK B ORDER BY B.GRP] — uncovered under
    {!Key_order}: the materializing sort must run. *)
val order_group_query : string
