module Value = Sqlval.Value

type config = {
  seed : int;
  suppliers : int;
  parts_per_supplier : int;
  agents_per_supplier : int;
  distinct_supplier_names : int;
  red_fraction : float;
  null_oem_part : bool;
}

let default =
  {
    seed = 42;
    suppliers = 100;
    parts_per_supplier = 10;
    agents_per_supplier = 2;
    distinct_supplier_names = 25;
    red_fraction = 0.25;
    null_oem_part = false;
  }

(* The paper's schema caps SNO at 499; widen the CHECK range when more
   suppliers are requested so instances stay valid. *)
let catalog_for cfg =
  let sno_max = max 499 cfg.suppliers in
  let supplier_ddl =
    Printf.sprintf
      "CREATE TABLE SUPPLIER (SNO INT NOT NULL, SNAME VARCHAR(20), SCITY \
       VARCHAR(20), BUDGET FLOAT, STATUS VARCHAR(10), PRIMARY KEY (SNO), \
       CHECK (SNO BETWEEN 1 AND %d), CHECK (SCITY IN ('Chicago', 'New \
       York', 'Toronto')), CHECK (BUDGET <> 0 OR STATUS = 'Inactive'))"
      sno_max
  in
  let parts_ddl =
    Printf.sprintf
      "CREATE TABLE PARTS (SNO INT NOT NULL, PNO INT NOT NULL, PNAME \
       VARCHAR(20), OEM_PNO INT, COLOR VARCHAR(10), PRIMARY KEY (SNO, PNO), \
       UNIQUE (OEM_PNO), FOREIGN KEY (SNO) REFERENCES SUPPLIER, CHECK (SNO \
       BETWEEN 1 AND %d))"
      sno_max
  in
  List.fold_left Catalog.add_ddl Catalog.empty
    [ supplier_ddl; parts_ddl; Paper_schema.agents_ddl ]

let agent_cities = [ "Ottawa"; "Hull"; "Toronto"; "Montreal" ]

let generate cfg =
  let rng = Random.State.make [| cfg.seed |] in
  let pick xs = List.nth xs (Random.State.int rng (List.length xs)) in
  let db = Engine.Database.create (catalog_for cfg) in
  let suppliers =
    List.init cfg.suppliers (fun i ->
        let sno = i + 1 in
        let sname =
          Printf.sprintf "SUPPLIER-%d"
            (Random.State.int rng (max 1 cfg.distinct_supplier_names))
        in
        let scity = pick Paper_schema.cities in
        let inactive = Random.State.int rng 10 = 0 in
        let budget = if inactive then 0.0 else float_of_int (1 + Random.State.int rng 10_000) in
        let status = if inactive then "Inactive" else "Active" in
        [| Value.Int sno; Value.String sname; Value.String scity;
           Value.Float budget; Value.String status |])
  in
  Engine.Database.load_sorted db "SUPPLIER" suppliers ~order:[ "SNO" ];
  let oem_counter = ref 0 in
  let parts =
    List.concat
      (List.init cfg.suppliers (fun i ->
           let sno = i + 1 in
           List.init cfg.parts_per_supplier (fun j ->
               let pno = j + 1 in
               incr oem_counter;
               let oem =
                 if cfg.null_oem_part && !oem_counter = 1 then Value.Null
                 else Value.Int !oem_counter
               in
               let color =
                 if Random.State.float rng 1.0 < cfg.red_fraction then "RED"
                 else pick (List.filter (fun c -> c <> "RED") Paper_schema.colors)
               in
               (* part names are shared across suppliers (several suppliers
                  carry "PART-2"), which is what makes Example 2's
                  projection genuinely duplicate-prone *)
               [| Value.Int sno; Value.Int pno;
                  Value.String (Printf.sprintf "PART-%d" pno);
                  oem; Value.String color |])))
  in
  Engine.Database.load_sorted db "PARTS" parts ~order:[ "SNO"; "PNO" ];
  let agents =
    List.concat
      (List.init cfg.suppliers (fun i ->
           let sno = i + 1 in
           List.init cfg.agents_per_supplier (fun j ->
               let ano = j + 1 in
               [| Value.Int sno; Value.Int ano;
                  Value.String (Printf.sprintf "AGENT-%d-%d" sno ano);
                  Value.String (pick agent_cities) |])))
  in
  Engine.Database.load_sorted db "AGENTS" agents ~order:[ "SNO"; "ANO" ];
  db

let supplier_db ?(seed = 42) ~suppliers ~parts_per_supplier
    ?(agents_per_supplier = 2) () =
  generate
    {
      default with
      seed;
      suppliers;
      parts_per_supplier;
      agents_per_supplier;
    }
