(** Deterministic, scalable instance generator for the supplier database
    (paper Figure 1). Generated instances satisfy every declared constraint
    (validated in the test suite via [Engine.Database.validate]).

    The paper's CHECK pins [SNO BETWEEN 1 AND 499]; to scale beyond 499
    suppliers the generated catalog widens that range to the requested
    supplier count (documented substitution — the constraint's {e shape} is
    preserved).

    Rows are emitted in primary-key order and loaded through
    {!Engine.Database.load_sorted} ([SUPPLIER] on [SNO], [PARTS] on
    [SNO, PNO], [AGENTS] on [SNO, ANO]), so the executor's order
    provenance — and with it sorted deduplication, merge joins and
    [ORDER BY] elision — sees a verified physical order on the default
    instance. *)

type config = {
  seed : int;
  suppliers : int;
  parts_per_supplier : int;
  agents_per_supplier : int;
  distinct_supplier_names : int;
      (** small pools create duplicate SNAMEs, the paper's Example 2
          scenario *)
  red_fraction : float;  (** fraction of parts with COLOR = 'RED' *)
  null_oem_part : bool;  (** give one part a NULL OEM_PNO candidate key *)
}

val default : config

(** Build a database (catalog + loaded rows). *)
val generate : config -> Engine.Database.t

(** Convenience: default config with the given sizes. *)
val supplier_db :
  ?seed:int ->
  suppliers:int ->
  parts_per_supplier:int ->
  ?agents_per_supplier:int ->
  unit ->
  Engine.Database.t
