module Value = Sqlval.Value

(* R.B is a candidate key (UNIQUE): projecting B lets the FD analyzer reach
   R's other columns through the key dependency B -> (A, C), which
   Algorithm 1's equality-only closure cannot do — the population therefore
   separates the two sufficient tests (experiment A2). *)
let small_catalog =
  List.fold_left Catalog.add_ddl Catalog.empty
    [ "CREATE TABLE R (A INT NOT NULL, B INT, C INT, PRIMARY KEY (A), UNIQUE (B))";
      "CREATE TABLE S (D INT NOT NULL, E INT, PRIMARY KEY (D))" ]

type config = {
  seed : int;
  count : int;
  max_predicates : int;
}

let default = { seed = 7; count = 200; max_predicates = 3 }

let cols_r = [ "R.A"; "R.B"; "R.C" ]
let cols_s = [ "S.D"; "S.E" ]

(* Both entry points delegate projection and predicate sampling to
   [Difftest.Query_gen.simple_spec] (the shared generator core); the RNG
   call order matches the original inline generators, so fixed-seed
   workloads are unchanged. *)
let generate cfg =
  let rng = Random.State.make [| cfg.seed |] in
  let gen_one () =
    let two_tables = Random.State.bool rng in
    let columns = if two_tables then cols_r @ cols_s else cols_r in
    let from =
      if two_tables then
        [ { Sql.Ast.table = "R"; corr = None };
          { Sql.Ast.table = "S"; corr = None } ]
      else [ { Sql.Ast.table = "R"; corr = None } ]
    in
    Difftest.Query_gen.simple_spec ~rng ~from ~columns
      ~style:
        (Difftest.Query_gen.Sampled
           { max_predicates = cfg.max_predicates; const_range = 3 })
  in
  List.init cfg.count (fun _ -> gen_one ())

let column_names cols = "A" :: List.init (cols - 1) (fun i -> Printf.sprintf "B%d" (i + 1))

let scaling_catalog ~cols =
  let names = column_names cols in
  let defs =
    List.map
      (fun c -> if c = "A" then "A INT NOT NULL" else c ^ " INT")
      names
  in
  Catalog.add_ddl Catalog.empty
    (Printf.sprintf "CREATE TABLE R (%s, PRIMARY KEY (A))"
       (String.concat ", " defs))

(* predicates over every column ([Per_column] style) so the exact checker
   cannot pin any of them to a singleton domain *)
let generate_single_table cfg ~cols =
  let rng = Random.State.make [| cfg.seed |] in
  let columns = List.map (fun c -> "R." ^ c) (column_names cols) in
  List.init cfg.count (fun _ ->
      Difftest.Query_gen.simple_spec ~rng
        ~from:[ { Sql.Ast.table = "R"; corr = None } ]
        ~columns
        ~style:(Difftest.Query_gen.Per_column { const_range = 2 }))
