(case
 (ddl
  "CREATE TABLE T1 (C1 INT NOT NULL, PRIMARY KEY (C1))"
  "CREATE TABLE T2 (C1 INT, C2 INT NOT NULL, PRIMARY KEY (C2))")
 (query
  "SELECT DISTINCT Q1.C1, COUNT(*) FROM T1 Q1 WHERE EXISTS (SELECT ALL * FROM T2 E1 WHERE E1.C1 = Q1.C1) GROUP BY Q1.C1")
 (instances
  (instance
   (table T1 (row 1) (row 2))
   (table T2 (row 1 1) (row 1 2) (row 2 3))
   (hosts))
  (instance
   (table T1 (row 1))
   (table T2 (row 1 4) (row 1 5))
   (hosts))))
