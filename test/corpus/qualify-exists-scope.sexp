(case
 (ddl
  "CREATE TABLE T1 (C1 INT NOT NULL, C2 INT, PRIMARY KEY (C1))"
  "CREATE TABLE T2 (C1 INT NOT NULL, C2 INT, PRIMARY KEY (C1))"
  "CREATE TABLE T3 (C1 INT NOT NULL, C2 INT, PRIMARY KEY (C1))")
 (query
  "SELECT DISTINCT Q2.C2 FROM T2 Q1, T1 Q2 WHERE EXISTS (SELECT ALL * FROM T3 E1 WHERE E1.C2 = Q1.C2)")
 (instances
  (instance
   (table T1 (row 1 0) (row 2 1))
   (table T2 (row 1 1) (row 2 NULL))
   (table T3 (row 1 1) (row 2 0))
   (hosts))
  (instance
   (table T1)
   (table T2 (row 1 2))
   (table T3 (row 1 2))
   (hosts))))
