(case
 (ddl
  "CREATE TABLE T1 (C1 INT NOT NULL, PRIMARY KEY (C1))")
 (query
  "SELECT ALL * FROM T1 Q1 WHERE EXISTS (SELECT ALL * FROM T1 E1 WHERE E1.C1 = Q1.C1)")
 (instances
  (instance
   (table T1 (row 1) (row 2))
   (hosts))
  (instance
   (table T1)
   (hosts))))
