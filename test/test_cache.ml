(* Cache-layer tests: bitset canonicality, LRU eviction order and
   counters, the Fdset dedup regression, fingerprint stability
   (alpha-renaming, collision freedom, catalog invalidation), the closure
   memo's on/off equivalence, and end-to-end cached-verdict consistency. *)

module Attr = Schema.Attr
module B = Cache.Bitset
module L = Cache.Lru
module A1 = Uniqueness.Algorithm1
module FdA = Uniqueness.Fd_analysis

let catalog = Workload.Paper_schema.catalog ()
let parse_spec = Sql.Parser.parse_query_spec

let example1 =
  "SELECT DISTINCT S.SNO, P.PNO, P.PNAME FROM SUPPLIER S, PARTS P WHERE \
   S.SNO = P.SNO AND P.COLOR = 'RED'"

(* ---- bitsets ---- *)

let test_bitset_ops () =
  let s = B.of_list [ 3; 70; 3; 1 ] in
  Alcotest.(check (list int)) "elements sorted, deduped" [ 1; 3; 70 ]
    (B.elements s);
  Alcotest.(check int) "cardinal" 3 (B.cardinal s);
  Alcotest.(check bool) "mem" true (B.mem 70 s);
  Alcotest.(check bool) "not mem" false (B.mem 2 s);
  Alcotest.(check (list int)) "union"
    [ 1; 2; 3; 70 ]
    (B.elements (B.union s (B.of_list [ 2; 3 ])));
  Alcotest.(check (list int)) "inter" [ 3 ]
    (B.elements (B.inter s (B.of_list [ 2; 3 ])));
  Alcotest.(check (list int)) "diff" [ 1; 70 ]
    (B.elements (B.diff s (B.of_list [ 2; 3 ])));
  Alcotest.(check bool) "subset" true (B.subset (B.of_list [ 1; 3 ]) s);
  Alcotest.(check bool) "not subset" false (B.subset (B.of_list [ 1; 2 ]) s)

(* same set, different construction order: one canonical serialization
   (the closure-memo key depends on this) *)
let test_bitset_canonical () =
  let a = B.of_list [ 64; 0 ] and b = B.add 0 (B.singleton 64) in
  Alcotest.(check bool) "equal" true (B.equal a b);
  let ser s =
    let buf = Buffer.create 16 in
    B.add_to_buffer buf s;
    Buffer.contents buf
  in
  Alcotest.(check string) "canonical serialization" (ser a) (ser b);
  (* removing the high bits must shrink the serialization (no trailing
     zero words), so sets of different width never alias *)
  Alcotest.(check bool) "widths differ" true
    (ser (B.singleton 0) <> ser (B.of_list [ 0; 64 ]))

(* ---- LRU ---- *)

let test_lru_eviction_order () =
  let t = L.create ~capacity:3 in
  L.add t "a" 1;
  L.add t "b" 2;
  L.add t "c" 3;
  (* touch "a": now "b" is the least recently used *)
  Alcotest.(check (option int)) "find a" (Some 1) (L.find t "a");
  L.add t "d" 4;
  Alcotest.(check (list string)) "recency order" [ "d"; "a"; "c" ]
    (L.keys_by_recency t);
  Alcotest.(check (option int)) "b evicted" None (L.find t "b");
  Alcotest.(check int) "length" 3 (L.length t);
  let c = L.counters t in
  Alcotest.(check int) "evictions" 1 c.L.c_evictions;
  Alcotest.(check int) "hits" 1 c.L.c_hits;
  Alcotest.(check int) "misses" 1 c.L.c_misses

let test_lru_overwrite () =
  let t = L.create ~capacity:2 in
  L.add t "a" 1;
  L.add t "b" 2;
  L.add t "a" 10;
  Alcotest.(check int) "overwrite keeps length" 2 (L.length t);
  Alcotest.(check (option int)) "overwritten" (Some 10) (L.find t "a");
  L.add t "c" 3;
  Alcotest.(check (option int)) "b evicted, not a" None (L.find t "b");
  Alcotest.(check (option int)) "a survives" (Some 10) (L.find t "a")

(* ---- sharded LRU (single-domain semantics) ---- *)

module Sh = Cache.Sharded

(* one shard reproduces the plain LRU exactly — this default keeps every
   sequential code path (and its pinned outputs) byte-identical *)
let test_sharded_single_shard_is_lru () =
  let t : (string, int) Sh.t = Sh.create ~shards:1 ~capacity:3 () in
  Sh.add t "a" 1;
  Sh.add t "b" 2;
  Sh.add t "c" 3;
  Alcotest.(check (option int)) "find a" (Some 1) (Sh.find t "a");
  Sh.add t "d" 4;
  Alcotest.(check (option int)) "b evicted (LRU order)" None (Sh.find t "b");
  Alcotest.(check (option int)) "a survives" (Some 1) (Sh.find t "a");
  Alcotest.(check int) "length" 3 (Sh.length t);
  let c = Sh.counters t in
  Alcotest.(check int) "evictions" 1 c.L.c_evictions;
  Alcotest.(check int) "contention is zero single-domain" 0 (Sh.contention t)

let test_sharded_routing_and_aggregate () =
  let t : (int, int) Sh.t = Sh.create ~shards:4 ~capacity:400 () in
  for k = 0 to 99 do
    Sh.add t k (k * 3)
  done;
  for k = 0 to 99 do
    Alcotest.(check (option int))
      (Printf.sprintf "key %d" k)
      (Some (k * 3))
      (Sh.find t k)
  done;
  Alcotest.(check int) "length over shards" 100 (Sh.length t);
  let agg = Sh.counters t in
  Alcotest.(check int) "aggregate hits" 100 agg.L.c_hits;
  let per = Sh.shard_counters t in
  Alcotest.(check int) "one row per shard" 4 (Array.length per);
  Alcotest.(check int) "per-shard hits sum to aggregate" agg.L.c_hits
    (Array.fold_left (fun acc s -> acc + s.Sh.s_counters.L.c_hits) 0 per);
  (* shard count rounds up to a power of two *)
  let t3 : (int, int) Sh.t = Sh.create ~shards:3 ~capacity:16 () in
  Sh.add t3 1 1;
  Alcotest.(check int) "rounded shard count" 4
    (Array.length (Sh.shard_counters t3));
  Sh.clear t;
  Alcotest.(check int) "clear empties every shard" 0 (Sh.length t)

(* ---- Fdset dedup regression ---- *)

(* union used to be [a @ b] and add never checked membership, so repeated
   derivations ballooned the dependency list the closure loop sweeps *)
let test_fdset_dedup () =
  let attr s = Attr.of_string s in
  let fd = Fd.Fdset.make_fd [ attr "R.A" ] [ attr "R.B" ] in
  let fd' = Fd.Fdset.make_fd [ attr "R.A" ] [ attr "R.C" ] in
  let t = Fd.Fdset.of_list [ fd; fd'; fd ] in
  Alcotest.(check int) "of_list dedups" 2 (List.length (Fd.Fdset.to_list t));
  Alcotest.(check int) "add dedups" 2
    (List.length (Fd.Fdset.to_list (Fd.Fdset.add t fd)));
  Alcotest.(check int) "union dedups" 2
    (List.length (Fd.Fdset.to_list (Fd.Fdset.union t t)));
  (* first-occurrence order is preserved (traced closures step in list
     order, so the pinned snapshots rely on it) *)
  Alcotest.(check bool) "order preserved" true
    (Fd.Fdset.to_list (Fd.Fdset.union t (Fd.Fdset.of_list [ fd' ])) = [ fd; fd' ])

(* ---- closure memo: on/off equivalence ---- *)

let test_memo_equivalence () =
  let attr s = Attr.of_string s in
  let fds =
    Fd.Fdset.of_list
      [ Fd.Fdset.make_fd [ attr "R.A" ] [ attr "R.B" ];
        Fd.Fdset.make_fd [ attr "R.B" ] [ attr "R.C" ];
        Fd.Fdset.make_fd [ attr "R.C"; attr "R.D" ] [ attr "R.E" ] ]
  in
  let seeds =
    [ [ "R.A" ]; [ "R.A"; "R.D" ]; [ "R.D" ]; [ "R.E" ]; [] ]
    |> List.map (fun l -> Attr.set_of_list (List.map attr l))
  in
  Cache.Runtime.clear ();
  List.iter
    (fun seed ->
      let off =
        Cache.Runtime.with_enabled false (fun () -> Fd.Fdset.closure fds seed)
      in
      let miss =
        Cache.Runtime.with_enabled true (fun () -> Fd.Fdset.closure fds seed)
      in
      let hit =
        Cache.Runtime.with_enabled true (fun () -> Fd.Fdset.closure fds seed)
      in
      Alcotest.(check bool) "off = miss" true (Attr.Set.equal off miss);
      Alcotest.(check bool) "miss = hit" true (Attr.Set.equal miss hit))
    seeds

(* a memo hit runs zero saturation sweeps — the property the
   ANALYSIS_CACHE benchmark's cold/warm comparison is built on *)
let test_memo_hit_skips_iterations () =
  let attr s = Attr.of_string s in
  let fds =
    Fd.Fdset.of_list [ Fd.Fdset.make_fd [ attr "R.A" ] [ attr "R.B" ] ]
  in
  let seed = Attr.set_of_list [ attr "R.A" ] in
  Cache.Runtime.clear ();
  Cache.Runtime.with_enabled true (fun () ->
      ignore (Fd.Fdset.closure fds seed);
      Cache.Counters.reset ();
      ignore (Fd.Fdset.closure fds seed);
      let c = Cache.Counters.snapshot () in
      Alcotest.(check int) "zero iterations on hit" 0
        c.Cache.Counters.iterations;
      Alcotest.(check int) "one memo hit" 1 c.Cache.Counters.memo_hits)

(* ---- fingerprints ---- *)

let key ?(tag = "alg1") cat sql =
  Analysis_cache.Fingerprint.query_key ~tag cat (parse_spec sql)

let test_fingerprint_alpha_renaming () =
  let renamed =
    "SELECT DISTINCT X.SNO, Y.PNO, Y.PNAME FROM SUPPLIER X, PARTS Y WHERE \
     X.SNO = Y.SNO AND Y.COLOR = 'RED'"
  in
  Alcotest.(check string) "alpha-renamed query shares the key"
    (key catalog example1) (key catalog renamed);
  (* nested scopes rename capture-free too *)
  let sub a b p =
    Printf.sprintf
      "SELECT %s.SNO FROM SUPPLIER %s WHERE EXISTS (SELECT %s.PNO FROM \
       PARTS %s WHERE %s.SNO = %s.SNO AND %s.COLOR = 'RED')"
      a a b b b a p
  in
  Alcotest.(check string) "nested scopes rename capture-free"
    (key catalog (sub "S" "P" "P")) (key catalog (sub "U" "V" "V"))

let test_fingerprint_discriminates () =
  let queries =
    [ example1;
      (* same tables, different projection *)
      "SELECT DISTINCT S.SNO, P.PNO FROM SUPPLIER S, PARTS P WHERE S.SNO = \
       P.SNO AND P.COLOR = 'RED'";
      (* same shape, different constant *)
      "SELECT DISTINCT S.SNO, P.PNO, P.PNAME FROM SUPPLIER S, PARTS P \
       WHERE S.SNO = P.SNO AND P.COLOR = 'BLUE'";
      (* ALL vs DISTINCT *)
      "SELECT ALL S.SNO, P.PNO, P.PNAME FROM SUPPLIER S, PARTS P WHERE \
       S.SNO = P.SNO AND P.COLOR = 'RED'";
      "SELECT DISTINCT S.SNO FROM SUPPLIER S";
      "SELECT DISTINCT A.SNO, A.ANO FROM AGENTS A" ]
  in
  let keys = List.map (key catalog) queries in
  let distinct = List.sort_uniq String.compare keys in
  Alcotest.(check int) "distinct queries, distinct keys" (List.length keys)
    (List.length distinct);
  Alcotest.(check bool) "tags namespace analyzers" true
    (key ~tag:"alg1" catalog example1 <> key ~tag:"fd" catalog example1)

let test_fingerprint_catalog_invalidation () =
  let k0 = key catalog example1 in
  (* any catalog change — even an unrelated table — moves the schema
     digest, so every old entry misses (coarse but sound invalidation) *)
  let cat' =
    Catalog.add_ddl catalog
      "CREATE TABLE AUDIT (EVENT INT NOT NULL, PRIMARY KEY (EVENT))"
  in
  Alcotest.(check bool) "new catalog, new key" true (k0 <> key cat' example1);
  (* a constraint change on a referenced table does too *)
  let cat'' =
    Catalog.add_ddl catalog
      "CREATE TABLE SUPPLIER (SNO INT NOT NULL, PRIMARY KEY (SNO))"
  in
  Alcotest.(check bool) "redefined table, new key" true
    (k0 <> key cat'' example1)

(* ---- cached verdicts ---- *)

let verdict_queries =
  [ example1;
    "SELECT DISTINCT S.SNAME, P.PNO, P.PNAME FROM SUPPLIER S, PARTS P \
     WHERE S.SNO = P.SNO AND P.COLOR = 'RED'";
    "SELECT DISTINCT S.SNO, S.SNAME FROM SUPPLIER S WHERE S.SCITY = \
     'Chicago'";
    "SELECT ALL P.SNO, P.PNO FROM PARTS P";
    "SELECT DISTINCT S.SCITY FROM SUPPLIER S" ]

let test_cached_verdict_consistency () =
  let cache = Analysis_cache.create () in
  Cache.Runtime.clear ();
  Cache.Runtime.with_enabled true (fun () ->
      List.iter
        (fun sql ->
          let q = parse_spec sql in
          let direct = A1.distinct_is_redundant catalog q in
          let miss = A1.distinct_is_redundant ~cache catalog q in
          let hit = A1.distinct_is_redundant ~cache catalog q in
          Alcotest.(check bool) ("alg1 miss: " ^ sql) direct miss;
          Alcotest.(check bool) ("alg1 hit: " ^ sql) direct hit;
          let direct_fd = FdA.distinct_is_redundant catalog q in
          let miss_fd = FdA.distinct_is_redundant ~cache catalog q in
          let hit_fd = FdA.distinct_is_redundant ~cache catalog q in
          Alcotest.(check bool) ("fd miss: " ^ sql) direct_fd miss_fd;
          Alcotest.(check bool) ("fd hit: " ^ sql) direct_fd hit_fd)
        verdict_queries);
  let c = Analysis_cache.counters cache in
  let n = List.length verdict_queries in
  Alcotest.(check int) "one miss per (query, analyzer)" (2 * n)
    c.L.c_misses;
  Alcotest.(check int) "one hit per (query, analyzer)" (2 * n) c.L.c_hits;
  Alcotest.(check int) "entries" (2 * n) (Analysis_cache.length cache)

(* the alpha-renamed twin is served from the first query's entry *)
let test_cached_verdict_shares_renamed () =
  let cache = Analysis_cache.create () in
  let q = parse_spec example1 in
  let renamed =
    parse_spec
      "SELECT DISTINCT X.SNO, Y.PNO, Y.PNAME FROM SUPPLIER X, PARTS Y \
       WHERE X.SNO = Y.SNO AND Y.COLOR = 'RED'"
  in
  ignore (A1.distinct_is_redundant ~cache catalog q);
  ignore (A1.distinct_is_redundant ~cache catalog renamed);
  let c = Analysis_cache.counters cache in
  Alcotest.(check int) "renamed twin hits" 1 c.L.c_hits;
  Alcotest.(check int) "one entry" 1 (Analysis_cache.length cache)

(* a traced request on a hit still produces the full analysis tree, plus
   exactly one cache.hit marker appended at this level *)
let test_cached_verdict_trace_complete () =
  let cache = Analysis_cache.create () in
  let q = parse_spec example1 in
  let bare = Trace.make () in
  ignore (A1.distinct_is_redundant ~trace:bare catalog q);
  ignore (A1.distinct_is_redundant ~cache catalog q);
  let traced = Trace.make () in
  ignore (A1.distinct_is_redundant ~cache ~trace:traced catalog q);
  let is_hit (n : Trace.node) = n.Trace.rule = "cache.hit" in
  let hits, rest = List.partition is_hit (Trace.nodes traced) in
  Alcotest.(check int) "one cache.hit marker" 1 (List.length hits);
  Alcotest.(check bool) "analysis nodes unchanged" true
    (rest = Trace.nodes bare)

(* LRU bound: verdict entries beyond the capacity evict oldest-first *)
let test_cached_verdict_eviction () =
  let cache = Analysis_cache.create ~capacity:2 () in
  let ask sql = ignore (A1.distinct_is_redundant ~cache catalog (parse_spec sql)) in
  ask "SELECT DISTINCT S.SNO FROM SUPPLIER S";
  ask "SELECT DISTINCT P.SNO, P.PNO FROM PARTS P";
  ask "SELECT DISTINCT A.SNO, A.ANO FROM AGENTS A";
  let c = Analysis_cache.counters cache in
  Alcotest.(check int) "bounded" 2 (Analysis_cache.length cache);
  Alcotest.(check int) "evicted one" 1 c.L.c_evictions;
  (* the first query was evicted: asking again misses *)
  ask "SELECT DISTINCT S.SNO FROM SUPPLIER S";
  Alcotest.(check int) "re-ask misses" 4 (Analysis_cache.counters cache).L.c_misses

let () =
  Alcotest.run "cache"
    [ ( "bitset",
        [ Alcotest.test_case "operations" `Quick test_bitset_ops;
          Alcotest.test_case "canonical serialization" `Quick
            test_bitset_canonical ] );
      ( "lru",
        [ Alcotest.test_case "eviction order" `Quick test_lru_eviction_order;
          Alcotest.test_case "overwrite" `Quick test_lru_overwrite ] );
      ( "sharded",
        [ Alcotest.test_case "one shard behaves as the plain LRU" `Quick
            test_sharded_single_shard_is_lru;
          Alcotest.test_case "routing and aggregate counters" `Quick
            test_sharded_routing_and_aggregate ] );
      ( "fdset",
        [ Alcotest.test_case "dedup regression" `Quick test_fdset_dedup ] );
      ( "closure memo",
        [ Alcotest.test_case "on/off equivalence" `Quick test_memo_equivalence;
          Alcotest.test_case "hit skips iterations" `Quick
            test_memo_hit_skips_iterations ] );
      ( "fingerprint",
        [ Alcotest.test_case "alpha renaming" `Quick
            test_fingerprint_alpha_renaming;
          Alcotest.test_case "discrimination" `Quick
            test_fingerprint_discriminates;
          Alcotest.test_case "catalog invalidation" `Quick
            test_fingerprint_catalog_invalidation ] );
      ( "verdicts",
        [ Alcotest.test_case "direct = miss = hit" `Quick
            test_cached_verdict_consistency;
          Alcotest.test_case "alpha-renamed twin shares entry" `Quick
            test_cached_verdict_shares_renamed;
          Alcotest.test_case "traced hit keeps the full tree" `Quick
            test_cached_verdict_trace_complete;
          Alcotest.test_case "LRU eviction" `Quick
            test_cached_verdict_eviction ] ) ]
