(* Tests for the differential fuzzer itself: the generators must produce
   constraint-satisfying schemas/instances, cases must round-trip through
   the corpus format, shrinking must preserve the failure it minimizes, a
   short fixed-seed campaign must be discrepancy-free and bit-reproducible,
   and every checked-in counterexample must replay clean. *)

module D = Difftest
module Value = Sqlval.Value

let rng_of seed = Random.State.make [| seed |]

(* ---- generator properties ---- *)

let prop_instances_satisfy_constraints =
  QCheck2.Test.make ~name:"generated instances satisfy their constraints"
    ~count:150 QCheck2.Gen.int
    (fun seed ->
      let rng = rng_of seed in
      let ddl = D.Schema_gen.generate ~rng in
      let cat = D.Schema_gen.catalog_of_ddl ddl in
      let rows = D.Instance_gen.tables ~rng cat in
      let db = D.Instance_gen.database cat rows in
      Engine.Database.validate db = [])

let prop_ddl_roundtrips =
  QCheck2.Test.make ~name:"generated DDL round-trips through the parser"
    ~count:150 QCheck2.Gen.int
    (fun seed ->
      let rng = rng_of seed in
      let ddl = D.Schema_gen.generate ~rng in
      List.for_all
        (fun ct ->
          match Sql.Parser.parse_statement (Sql.Pretty.create_table ct) with
          | Sql.Ast.Create ct' ->
            (* the catalog is the semantic arbiter: both must canonicalize
               to the same table definition *)
            Catalog.table_def_of_create ct = Catalog.table_def_of_create ct'
          | _ -> false)
        ddl)

let prop_queries_execute =
  QCheck2.Test.make ~name:"generated queries execute on generated instances"
    ~count:150 QCheck2.Gen.int
    (fun seed ->
      let rng = rng_of seed in
      let case = D.Case.generate ~rng ~instances:2 ~rows:4 () in
      List.for_all
        (fun inst ->
          let db = D.Case.database case inst in
          let r =
            Engine.Exec.run_query db ~hosts:inst.D.Case.hosts case.D.Case.query
          in
          Engine.Relation.cardinality r >= 0)
        case.D.Case.instances)

let prop_case_sexp_roundtrips =
  QCheck2.Test.make ~name:"cases round-trip through the corpus format"
    ~count:100 QCheck2.Gen.int
    (fun seed ->
      let rng = rng_of seed in
      let case = D.Case.generate ~rng ~instances:2 ~rows:3 () in
      let text = D.Sexp.to_string (D.Case.to_sexp case) in
      let case' = D.Case.of_sexp (D.Sexp.of_string text) in
      D.Sexp.to_string (D.Case.to_sexp case') = text)

(* ---- shrinking ---- *)

let total_rows (c : D.Case.t) =
  List.fold_left
    (fun acc inst ->
      List.fold_left
        (fun acc (_, rows) -> acc + List.length rows)
        acc inst.D.Case.rows)
    0 c.D.Case.instances

let prop_shrink_preserves_failure =
  QCheck2.Test.make ~name:"shrinking preserves the failure it minimizes"
    ~count:40 QCheck2.Gen.int
    (fun seed ->
      let rng = rng_of seed in
      let case = D.Case.generate ~rng ~instances:2 ~rows:4 () in
      (* a synthetic deterministic "failure": the case holds >= 3 rows *)
      let fails c = total_rows c >= 3 in
      QCheck2.assume (D.Shrink.valid case && fails case);
      let small = D.Shrink.minimize ~fails case in
      fails small && D.Shrink.valid small && total_rows small <= total_rows case)

(* ---- campaign determinism and soundness ---- *)

let campaign_config =
  { D.Runner.default with D.Runner.seed = 7; count = 60; instances = 2; rows = 4 }

let report_text r = Format.asprintf "%a" D.Runner.pp_report r

let test_campaign_clean () =
  let r = D.Runner.run campaign_config in
  Alcotest.(check int) "no invalid generated cases" 0 r.D.Runner.skipped_cases;
  Alcotest.(check int) "no discrepancies" 0
    (List.length r.D.Runner.discrepancies)

let test_campaign_deterministic () =
  let a = report_text (D.Runner.run campaign_config) in
  let b = report_text (D.Runner.run campaign_config) in
  Alcotest.(check string) "identical reports" a b

(* nested-OR cases blow the normalization clause budget, so the analyzers
   answer the sound MAYBE; the oracles must stay clean on them, and the
   knob's 0.0 default must leave the seeded stream untouched *)
let test_campaign_nested_or_clean () =
  let config =
    { campaign_config with D.Runner.nested_or = 0.5; shrink = false }
  in
  let r = D.Runner.run config in
  Alcotest.(check int) "no invalid generated cases" 0 r.D.Runner.skipped_cases;
  Alcotest.(check int) "no discrepancies" 0
    (List.length r.D.Runner.discrepancies);
  let explicit_default =
    report_text (D.Runner.run { campaign_config with D.Runner.nested_or = 0.0 })
  in
  Alcotest.(check string) "nested_or 0.0 is byte-identical to the default"
    (report_text (D.Runner.run campaign_config))
    explicit_default

(* pool-consistency oracle: judging the campaign on 4 domains must merge
   back into the byte-identical report the sequential run produces, with
   the shared cache on as well as off *)
let test_campaign_pool_consistent () =
  let sequential = report_text (D.Runner.run campaign_config) in
  let pooled =
    Parallel.Pool.with_pool ~jobs:4 (fun pool ->
        report_text (D.Runner.run ~pool campaign_config))
  in
  Alcotest.(check string) "jobs 1 = jobs 4" sequential pooled;
  let cached = { campaign_config with D.Runner.use_cache = true } in
  let seq_cached = report_text (D.Runner.run cached) in
  let pooled_cached =
    Parallel.Pool.with_pool ~jobs:4 (fun pool ->
        report_text (D.Runner.run ~pool cached))
  in
  Alcotest.(check string) "cache-free = shared-cache, pooled" sequential
    seq_cached;
  Alcotest.(check string) "jobs 1 = jobs 4 with the shared cache" seq_cached
    pooled_cached

(* symbolic-oracle reproducibility: restricting a campaign to the
   symbolic (and logic) oracle groups must be byte-identical across
   sequential and pooled judging — the symbolic witness search is a
   deterministic function of the case, with no RNG of its own *)
let test_campaign_symbolic_reproducible () =
  let config =
    { campaign_config with D.Runner.oracles = [ "symbolic"; "logic" ] }
  in
  let sequential = report_text (D.Runner.run config) in
  let pooled =
    Parallel.Pool.with_pool ~jobs:4 (fun pool ->
        report_text (D.Runner.run ~pool config))
  in
  Alcotest.(check string) "symbolic oracle: jobs 1 = jobs 4" sequential pooled;
  Alcotest.(check string) "symbolic oracle: rerun is byte-identical"
    sequential
    (report_text (D.Runner.run config))

(* the skip accounting must itself be deterministic and must never lose
   a skip: the per-reason tallies have to sum to the report's skip
   total, for every oracle restriction *)
let test_skips_are_accounted () =
  List.iter
    (fun only ->
      let config = { campaign_config with D.Runner.oracles = only } in
      let r = D.Runner.run config in
      let tallied =
        List.fold_left (fun acc (_, n) -> acc + n) 0 r.D.Runner.skip_reasons
      in
      let skips =
        List.fold_left
          (fun acc (_, (_, skip, _)) -> acc + skip)
          0 r.D.Runner.per_oracle
      in
      Alcotest.(check int)
        (Printf.sprintf "skip reasons sum to skip total (%s)"
           (String.concat "," only))
        skips tallied)
    [ []; [ "symbolic" ]; [ "agreement"; "symbolic" ] ]

(* ---- regression corpus ---- *)

let corpus_files () =
  Sys.readdir "corpus" |> Array.to_list
  |> List.filter (fun f -> Filename.check_suffix f ".sexp")
  |> List.sort String.compare
  |> List.map (Filename.concat "corpus")

let test_corpus_replays_clean () =
  let files = corpus_files () in
  Alcotest.(check bool) "corpus is non-empty" true (files <> []);
  List.iter
    (fun path ->
      let case = D.Case.load path in
      let findings = D.Runner.replay case in
      match D.Oracle.failures findings with
      | [] -> ()
      | fs ->
        Alcotest.fail
          (Format.asprintf "%s: %a" path
             (Format.pp_print_list D.Oracle.pp_finding)
             fs))
    files

let test_corpus_cases_valid () =
  List.iter
    (fun path ->
      let case = D.Case.load path in
      Alcotest.(check bool)
        (path ^ " instances satisfy constraints")
        true (D.Shrink.valid case))
    (corpus_files ())

let () =
  Alcotest.run "difftest"
    [
      ( "generators",
        [
          QCheck_alcotest.to_alcotest prop_instances_satisfy_constraints;
          QCheck_alcotest.to_alcotest prop_ddl_roundtrips;
          QCheck_alcotest.to_alcotest prop_queries_execute;
          QCheck_alcotest.to_alcotest prop_case_sexp_roundtrips;
        ] );
      ("shrinking", [ QCheck_alcotest.to_alcotest prop_shrink_preserves_failure ]);
      ( "campaign",
        [
          Alcotest.test_case "fixed-seed campaign is clean" `Quick
            test_campaign_clean;
          Alcotest.test_case "same seed, same report" `Quick
            test_campaign_deterministic;
          Alcotest.test_case "nested-OR (budget MAYBE) campaign is clean"
            `Quick test_campaign_nested_or_clean;
          Alcotest.test_case "4-domain pool, same report" `Quick
            test_campaign_pool_consistent;
          Alcotest.test_case "symbolic oracle reproducible across jobs" `Quick
            test_campaign_symbolic_reproducible;
          Alcotest.test_case "skips are accounted by reason" `Quick
            test_skips_are_accounted;
        ] );
      ( "corpus",
        [
          Alcotest.test_case "replays clean" `Quick test_corpus_replays_clean;
          Alcotest.test_case "cases are valid" `Quick test_corpus_cases_valid;
        ] );
    ]
