(* Execution engine tests: multiset semantics, 3VL selection, DISTINCT,
   set operations, correlated EXISTS, and constraint validation. *)

module Value = Sqlval.Value
module DB = Engine.Database
module Exec = Engine.Exec
module Relation = Engine.Relation

let v_int i = Value.Int i
let v_str s = Value.String s

(* A tiny two-table database used by most cases. *)
let small_db () =
  let cat =
    List.fold_left Catalog.add_ddl Catalog.empty
      [ "CREATE TABLE R (A INT NOT NULL, B VARCHAR(10), PRIMARY KEY (A))";
        "CREATE TABLE S (C INT NOT NULL, D INT, PRIMARY KEY (C))" ]
  in
  let db = DB.create cat in
  DB.load db "R"
    [ [| v_int 1; v_str "x" |]; [| v_int 2; v_str "y" |];
      [| v_int 3; v_str "x" |] ];
  DB.load db "S"
    [ [| v_int 1; v_int 10 |]; [| v_int 2; Value.Null |];
      [| v_int 4; v_int 10 |] ];
  db

let run ?config db s = Exec.run_sql ?config db ~hosts:[] s
let run_h db hosts s = Exec.run_sql db ~hosts s

let rows r = List.map Array.to_list r.Relation.rows

let sorted_rows r =
  List.sort compare (rows r)

let check_rows msg expected r =
  Alcotest.(check (list (list (Alcotest.testable Value.pp Value.equal_null))))
    msg
    (List.sort compare expected)
    (sorted_rows r)

let test_scan_project () =
  let db = small_db () in
  let r = run db "SELECT R.A FROM R" in
  check_rows "all A values" [ [ v_int 1 ]; [ v_int 2 ]; [ v_int 3 ] ] r

let test_select_3vl () =
  let db = small_db () in
  (* S.D = 10 is unknown for the NULL row: it must NOT qualify *)
  let r = run db "SELECT S.C FROM S WHERE S.D = 10" in
  check_rows "nulls do not qualify" [ [ v_int 1 ]; [ v_int 4 ] ] r;
  (* ... and NOT (D = 10) does not return it either *)
  let r = run db "SELECT S.C FROM S WHERE NOT S.D = 10" in
  check_rows "negation keeps unknown out" [] r;
  let r = run db "SELECT S.C FROM S WHERE S.D IS NULL" in
  check_rows "is null" [ [ v_int 2 ] ] r

let test_product_join () =
  let db = small_db () in
  let r = run db "SELECT R.A, S.D FROM R, S WHERE R.A = S.C" in
  check_rows "join" [ [ v_int 1; v_int 10 ]; [ v_int 2; Value.Null ] ] r

let test_projection_keeps_duplicates () =
  let db = small_db () in
  let r = run db "SELECT ALL R.B FROM R" in
  Alcotest.(check int) "bag projection" 3 (Relation.cardinality r);
  Alcotest.(check int) "two distinct" 2 (Relation.distinct_count r)

let test_distinct () =
  let db = small_db () in
  let r = run db "SELECT DISTINCT R.B FROM R" in
  check_rows "distinct" [ [ v_str "x" ]; [ v_str "y" ] ] r

let test_distinct_null_equivalence () =
  (* DISTINCT treats two nulls as equal (null-comparison semantics) *)
  let cat = Catalog.add_ddl Catalog.empty
      "CREATE TABLE T (K INT NOT NULL, V INT, PRIMARY KEY (K))" in
  let db = DB.create cat in
  DB.load db "T" [ [| v_int 1; Value.Null |]; [| v_int 2; Value.Null |] ];
  let r = run db "SELECT DISTINCT T.V FROM T" in
  Alcotest.(check int) "one null row" 1 (Relation.cardinality r)

let test_hash_distinct_agrees () =
  let db = small_db () in
  let q = "SELECT DISTINCT R.B FROM R" in
  let cfg_hash = { (Exec.default_config ()) with Exec.distinct_impl = Exec.Hash_distinct } in
  let a = run db q in
  let b = run ~config:cfg_hash db q in
  Alcotest.(check bool) "same bag" true (Relation.equal_bags a b)

let test_host_variables () =
  let db = small_db () in
  let r = run_h db [ ("X", v_int 2) ] "SELECT R.B FROM R WHERE R.A = :X" in
  check_rows "host bound" [ [ v_str "y" ] ] r

let test_exists_correlated () =
  let db = small_db () in
  let r =
    run db
      "SELECT R.A FROM R WHERE EXISTS (SELECT * FROM S WHERE S.C = R.A)"
  in
  check_rows "correlated exists" [ [ v_int 1 ]; [ v_int 2 ] ] r

let test_not_exists () =
  let db = small_db () in
  let r =
    run db
      "SELECT R.A FROM R WHERE NOT EXISTS (SELECT * FROM S WHERE S.C = R.A)"
  in
  check_rows "not exists" [ [ v_int 3 ] ] r

let test_intersect_distinct_and_all () =
  let cat = List.fold_left Catalog.add_ddl Catalog.empty
      [ "CREATE TABLE X (K INT NOT NULL, A INT, PRIMARY KEY (K))";
        "CREATE TABLE Y (K INT NOT NULL, A INT, PRIMARY KEY (K))" ] in
  let db = DB.create cat in
  (* X projects A = [1;1;1;2]; Y projects A = [1;1;3] *)
  DB.load db "X"
    [ [| v_int 1; v_int 1 |]; [| v_int 2; v_int 1 |]; [| v_int 3; v_int 1 |];
      [| v_int 4; v_int 2 |] ];
  DB.load db "Y"
    [ [| v_int 1; v_int 1 |]; [| v_int 2; v_int 1 |]; [| v_int 3; v_int 3 |] ];
  let r = run db "SELECT X.A FROM X INTERSECT SELECT Y.A FROM Y" in
  check_rows "intersect distinct" [ [ v_int 1 ] ] r;
  (* INTERSECT ALL: min(3, 2) occurrences of 1 *)
  let r = run db "SELECT X.A FROM X INTERSECT ALL SELECT Y.A FROM Y" in
  check_rows "intersect all" [ [ v_int 1 ]; [ v_int 1 ] ] r

let test_except_distinct_and_all () =
  let cat = List.fold_left Catalog.add_ddl Catalog.empty
      [ "CREATE TABLE X (K INT NOT NULL, A INT, PRIMARY KEY (K))";
        "CREATE TABLE Y (K INT NOT NULL, A INT, PRIMARY KEY (K))" ] in
  let db = DB.create cat in
  (* X.A = [1;1;1;2]; Y.A = [1;3] *)
  DB.load db "X"
    [ [| v_int 1; v_int 1 |]; [| v_int 2; v_int 1 |]; [| v_int 3; v_int 1 |];
      [| v_int 4; v_int 2 |] ];
  DB.load db "Y" [ [| v_int 1; v_int 1 |]; [| v_int 2; v_int 3 |] ];
  let r = run db "SELECT X.A FROM X EXCEPT SELECT Y.A FROM Y" in
  check_rows "except distinct" [ [ v_int 2 ] ] r;
  (* EXCEPT ALL: max(3 - 1, 0) ones and one 2 *)
  let r = run db "SELECT X.A FROM X EXCEPT ALL SELECT Y.A FROM Y" in
  check_rows "except all" [ [ v_int 1 ]; [ v_int 1 ]; [ v_int 2 ] ] r

let test_setop_null_handling () =
  (* INTERSECT equates NULLs (unlike WHERE-clause '=') *)
  let cat = List.fold_left Catalog.add_ddl Catalog.empty
      [ "CREATE TABLE X (K INT NOT NULL, A INT, PRIMARY KEY (K))";
        "CREATE TABLE Y (K INT NOT NULL, A INT, PRIMARY KEY (K))" ] in
  let db = DB.create cat in
  DB.load db "X" [ [| v_int 1; Value.Null |] ];
  DB.load db "Y" [ [| v_int 1; Value.Null |] ];
  let r = run db "SELECT X.A FROM X INTERSECT SELECT Y.A FROM Y" in
  Alcotest.(check int) "null matches null" 1 (Relation.cardinality r)

let test_hash_join_agrees_with_naive () =
  let db = Workload.Generator.supplier_db ~suppliers:30 ~parts_per_supplier:4 () in
  let queries =
    [ "SELECT S.SNO, P.PNO FROM SUPPLIER S, PARTS P WHERE S.SNO = P.SNO";
      "SELECT S.SNO, P.PNO FROM SUPPLIER S, PARTS P WHERE S.SNO = P.SNO AND \
       P.COLOR = 'RED'";
      "SELECT DISTINCT S.SNO, P.PNO, A.ANO FROM SUPPLIER S, PARTS P, AGENTS \
       A WHERE S.SNO = P.SNO AND A.SNO = S.SNO";
      (* no equi-join at all: pure product with a range filter *)
      "SELECT S.SNO, A.ANO FROM SUPPLIER S, AGENTS A WHERE S.SNO < A.SNO";
      (* join + correlated EXISTS residual *)
      "SELECT S.SNO FROM SUPPLIER S, PARTS P WHERE S.SNO = P.SNO AND EXISTS \
       (SELECT * FROM AGENTS A WHERE A.SNO = S.SNO)" ]
  in
  List.iter
    (fun q ->
      let naive =
        { (Exec.default_config ()) with Exec.join_impl = Exec.Nested_join }
      in
      let a = run db q in
      let b = run ~config:naive db q in
      Alcotest.(check bool) ("hash = naive: " ^ q) true (Relation.equal_bags a b))
    queries

let test_indexed_exists_agrees () =
  let db = Workload.Generator.supplier_db ~suppliers:30 ~parts_per_supplier:4 () in
  let queries =
    [ "SELECT S.SNO FROM SUPPLIER S WHERE EXISTS (SELECT * FROM PARTS P \
       WHERE P.SNO = S.SNO AND P.COLOR = 'RED')";
      "SELECT S.SNO FROM SUPPLIER S WHERE NOT EXISTS (SELECT * FROM AGENTS \
       A WHERE A.SNO = S.SNO AND A.ACITY = 'Hull')";
      (* no equi-correlation: must fall back to the nested loop *)
      "SELECT S.SNO FROM SUPPLIER S WHERE EXISTS (SELECT * FROM PARTS P \
       WHERE P.SNO < S.SNO)";
      (* correlation on a nullable column *)
      "SELECT P.SNO, P.PNO FROM PARTS P WHERE EXISTS (SELECT * FROM PARTS \
       P2 WHERE P2.OEM_PNO = P.OEM_PNO AND P2.COLOR = 'RED')" ]
  in
  List.iter
    (fun q ->
      let indexed =
        { (Exec.default_config ()) with Exec.exists_impl = Exec.Indexed_exists }
      in
      let a = run db q in
      let b = run ~config:indexed db q in
      Alcotest.(check bool) ("indexed = naive: " ^ q) true
        (Relation.equal_bags a b))
    queries

let test_hash_join_null_keys () =
  (* equi-join keys that are NULL must not match (WHERE-clause equality) *)
  let cat =
    List.fold_left Catalog.add_ddl Catalog.empty
      [ "CREATE TABLE X (K INT NOT NULL, J INT, PRIMARY KEY (K))";
        "CREATE TABLE Y (K INT NOT NULL, J INT, PRIMARY KEY (K))" ]
  in
  let db = DB.create cat in
  DB.load db "X" [ [| v_int 1; Value.Null |]; [| v_int 2; v_int 5 |] ];
  DB.load db "Y" [ [| v_int 1; Value.Null |]; [| v_int 2; v_int 5 |] ];
  let r = run db "SELECT X.K, Y.K FROM X, Y WHERE X.J = Y.J" in
  check_rows "only the non-null pair" [ [ v_int 2; v_int 2 ] ] r

let test_stats_sort_counted () =
  let db = small_db () in
  let cfg = Exec.default_config () in
  ignore (Exec.run_sql ~config:cfg db ~hosts:[] "SELECT DISTINCT R.B FROM R");
  Alcotest.(check bool) "sort performed" true (cfg.Exec.stats.Engine.Stats.sorts >= 1);
  let cfg2 = Exec.default_config () in
  ignore (Exec.run_sql ~config:cfg2 db ~hosts:[] "SELECT ALL R.B FROM R");
  Alcotest.(check int) "no sort for ALL" 0 cfg2.Exec.stats.Engine.Stats.sorts

let test_unbound_errors () =
  let db = small_db () in
  (match run db "SELECT R.A FROM R WHERE R.A = :MISSING" with
   | exception Exec.Unbound_host _ -> ()
   | _ -> Alcotest.fail "expected unbound host");
  match run db "SELECT R.A FROM R WHERE R.NOPE = 1" with
  | exception Exec.Unbound_column _ -> ()
  | _ -> Alcotest.fail "expected unbound column"

(* ---- constraint validation ---- *)

let test_validate_ok () =
  let db = small_db () in
  Alcotest.(check int) "no violations" 0 (List.length (DB.validate db))

let test_validate_duplicate_pk () =
  let db = small_db () in
  DB.insert db "R" [| v_int 1; v_str "dup" |];
  let vs = DB.validate db in
  Alcotest.(check bool) "duplicate key reported" true
    (List.exists (function DB.Duplicate_key _ -> true | _ -> false) vs)

let test_validate_null_pk () =
  let db = small_db () in
  DB.insert db "R" [| Value.Null; v_str "n" |];
  let vs = DB.validate db in
  Alcotest.(check bool) "null pk reported" true
    (List.exists (function DB.Null_in_primary_key _ -> true | _ -> false) vs)

let test_validate_check () =
  let cat =
    Catalog.add_ddl Catalog.empty
      "CREATE TABLE T (A INT NOT NULL, PRIMARY KEY (A), CHECK (A BETWEEN 1 AND 9))"
  in
  let db = DB.create cat in
  DB.load db "T" [ [| v_int 5 |]; [| v_int 11 |] ];
  let vs = DB.validate db in
  Alcotest.(check int) "one check violation" 1 (List.length vs)

let test_validate_unique_nulls () =
  (* SQL2 / paper semantics: at most one NULL in a UNIQUE candidate key *)
  let cat =
    Catalog.add_ddl Catalog.empty
      "CREATE TABLE T (A INT NOT NULL, U INT, PRIMARY KEY (A), UNIQUE (U))"
  in
  let db = DB.create cat in
  DB.load db "T" [ [| v_int 1; Value.Null |]; [| v_int 2; Value.Null |] ];
  let vs = DB.validate db in
  Alcotest.(check bool) "two nulls violate UNIQUE" true
    (List.exists (function DB.Duplicate_key _ -> true | _ -> false) vs)

(* ---- generated workload sanity ---- *)

let test_generator_valid () =
  let db =
    Workload.Generator.supplier_db ~suppliers:50 ~parts_per_supplier:5 ()
  in
  Alcotest.(check int) "suppliers" 50 (DB.row_count db "SUPPLIER");
  Alcotest.(check int) "parts" 250 (DB.row_count db "PARTS");
  Alcotest.(check int) "valid instance" 0 (List.length (DB.validate db))

let test_generator_scales_past_499 () =
  let db =
    Workload.Generator.supplier_db ~suppliers:1000 ~parts_per_supplier:2 ()
  in
  Alcotest.(check int) "valid at 1000 suppliers" 0 (List.length (DB.validate db))

let test_generator_deterministic () =
  let a = Workload.Generator.supplier_db ~suppliers:20 ~parts_per_supplier:3 () in
  let b = Workload.Generator.supplier_db ~suppliers:20 ~parts_per_supplier:3 () in
  Alcotest.(check bool) "same rows" true
    (Relation.equal_bags (DB.table a "SUPPLIER") (DB.table b "SUPPLIER"))

(* ---- streaming operators ---- *)

module Operator = Engine.Operator
module Stats = Engine.Stats
module Attr = Schema.Attr
module Relschema = Schema.Relschema

let attr ?(rel = "T") n = Attr.make ~rel ~name:n

let int_schema ?rel names =
  Relschema.make
    (List.map
       (fun n ->
         { Relschema.attr = attr ?rel n;
           ctype = Relschema.Tint;
           nullable = false })
       names)

let test_order_covers () =
  let s_ab = int_schema [ "A"; "B" ] in
  let s_a = int_schema [ "A" ] in
  let covers s o = Operator.order_covers s o in
  Alcotest.(check bool) "[A;B] covers {A,B}" true
    (covers s_ab [ attr "A"; attr "B" ]);
  Alcotest.(check bool) "[B;A] covers {A,B}" true
    (covers s_ab [ attr "B"; attr "A" ]);
  Alcotest.(check bool) "[A] does not cover {A,B}" false
    (covers s_ab [ attr "A" ]);
  Alcotest.(check bool) "empty order covers nothing" false (covers s_a []);
  Alcotest.(check bool) "prefix [A] of [A;B] covers {A}" true
    (covers s_a [ attr "A"; attr "B" ]);
  Alcotest.(check bool) "foreign attr breaks the prefix" false
    (covers s_a [ attr "Z"; attr "A" ])

let test_product_order_inherits_left () =
  let l =
    Operator.of_rows ~order:[ attr "A" ] (int_schema [ "A" ])
      [ [| v_int 1 |]; [| v_int 2 |] ]
  in
  let r =
    Operator.of_rows (int_schema ~rel:"U" [ "C" ]) [ [| v_int 7 |]; [| v_int 8 |] ]
  in
  let p = Operator.product l r in
  Alcotest.(check (list string)) "order inherited from left outer" [ "A" ]
    (List.map (fun (a : Attr.t) -> a.Attr.name) (Operator.order p));
  Alcotest.(check int) "all pairs produced" 4 (List.length (Operator.to_rows p))

let test_sorted_unique_refuses_uncovered () =
  let stats = Stats.create () in
  let op =
    Operator.of_rows ~order:[ attr "A" ] (int_schema [ "A"; "B" ])
      [ [| v_int 1; v_int 1 |] ]
  in
  (match Operator.sorted_unique ~stats op with
  | None -> ()
  | Some _ -> Alcotest.fail "sorted_unique accepted a non-covering order");
  let no_order = Operator.of_rows (int_schema [ "A" ]) [ [| v_int 1 |] ] in
  match Operator.sorted_unique ~stats no_order with
  | None -> ()
  | Some _ -> Alcotest.fail "sorted_unique accepted an unknown order"

let test_sorted_unique_one_row_state () =
  let stats = Stats.create () in
  let op =
    Operator.of_rows ~order:[ attr "A" ] (int_schema [ "A" ])
      (List.map (fun i -> [| v_int i |]) [ 1; 1; 2; 2; 2; 3 ])
  in
  match Operator.sorted_unique ~stats op with
  | None -> Alcotest.fail "covering order refused"
  | Some u ->
    let drained = Operator.to_rows u in
    Alcotest.(check (list (list int))) "adjacent duplicates dropped"
      [ [ 1 ]; [ 2 ]; [ 3 ] ]
      (List.map
         (fun r -> Array.to_list (Array.map (function Value.Int i -> i | _ -> -1) r))
         drained);
    Alcotest.(check int) "one row of state" 1 stats.Stats.dedup_state_peak;
    Alcotest.(check int) "rows in" 6 stats.Stats.dedup_rows_in;
    Alcotest.(check int) "rows out" 3 stats.Stats.dedup_rows_out

let test_elided_unique_is_pass_through () =
  let stats = Stats.create () in
  let rows = [ [| v_int 1 |]; [| v_int 1 |]; [| v_int 2 |] ] in
  let u =
    Operator.elided_unique ~stats (Operator.of_rows (int_schema [ "A" ]) rows)
  in
  Alcotest.(check int) "nothing dropped" 3 (List.length (Operator.to_rows u));
  Alcotest.(check int) "one elision recorded" 1 stats.Stats.distinct_elisions;
  Alcotest.(check int) "no state held" 0 stats.Stats.dedup_state_peak

let test_hash_unique_rewind () =
  let stats = Stats.create () in
  let u =
    Operator.hash_unique ~stats
      (Operator.of_rows (int_schema [ "A" ])
         [ [| v_int 1 |]; [| v_int 1 |]; [| v_int 2 |] ])
  in
  (* drain by hand: to_rows would close the operator, and rewind after
     close is not part of the contract *)
  let drain op =
    let n = ref 0 in
    let rec go () =
      match Operator.next op with Some _ -> incr n; go () | None -> ()
    in
    go ();
    !n
  in
  Alcotest.(check int) "first drain" 2 (drain u);
  Operator.rewind u;
  Alcotest.(check int) "drain after rewind" 2 (drain u);
  Operator.close u

(* ---- streaming join operators ---- *)

let ints_of r =
  Array.to_list (Array.map (function Value.Int i -> i | _ -> -999) r)

let test_operator_hash_join () =
  let stats = Stats.create () in
  let probe =
    Operator.of_rows ~order:[ attr "A" ] (int_schema [ "A" ])
      [ [| v_int 1 |]; [| v_int 2 |]; [| v_int 9 |]; [| Value.Null |] ]
  in
  let build =
    Operator.of_rows (int_schema ~rel:"U" [ "K"; "V" ])
      [ [| v_int 1; v_int 10 |]; [| v_int 1; v_int 11 |];
        [| v_int 2; v_int 20 |]; [| Value.Null; v_int 30 |] ]
  in
  let j =
    Operator.hash_join ~stats ~probe_key:[ 0 ] ~build_key:[ 0 ] probe build
  in
  Alcotest.(check (list string)) "order inherited from probe" [ "A" ]
    (List.map (fun (a : Attr.t) -> a.Attr.name) (Operator.order j));
  Alcotest.(check int) "build side untouched before the first pull" 0
    stats.Stats.join_build_rows;
  Alcotest.(check (list (list int)))
    "bucket replay in build order, null keys dropped both sides"
    [ [ 1; 1; 10 ]; [ 1; 1; 11 ]; [ 2; 2; 20 ] ]
    (List.map ints_of (Operator.to_rows j));
  Alcotest.(check int) "build rows counted" 4 stats.Stats.join_build_rows;
  Alcotest.(check int) "probe rows counted" 4 stats.Stats.join_probe_rows;
  Alcotest.(check int) "no unique builds" 0 stats.Stats.unique_builds;
  Alcotest.(check int) "no early exits" 0 stats.Stats.probe_early_exits

let test_operator_hash_join_unique () =
  let stats = Stats.create () in
  let probe =
    Operator.of_rows (int_schema [ "A" ])
      [ [| v_int 1 |]; [| v_int 1 |]; [| v_int 2 |]; [| v_int 9 |] ]
  in
  let build =
    Operator.of_rows (int_schema ~rel:"U" [ "K" ])
      [ [| v_int 1 |]; [| v_int 2 |]; [| v_int 3 |] ]
  in
  let j =
    Operator.hash_join ~stats ~unique_build:true ~probe_key:[ 0 ]
      ~build_key:[ 0 ] probe build
  in
  Alcotest.(check (list (list int))) "one flat row per key"
    [ [ 1; 1 ]; [ 1; 1 ]; [ 2; 2 ] ]
    (List.map ints_of (Operator.to_rows j));
  Alcotest.(check int) "unique build recorded" 1 stats.Stats.unique_builds;
  Alcotest.(check int) "early exit on every matching probe" 3
    stats.Stats.probe_early_exits

let test_operator_hash_join_rewind () =
  let stats = Stats.create () in
  let probe =
    Operator.of_rows (int_schema [ "A" ]) [ [| v_int 1 |]; [| v_int 2 |] ]
  in
  let build =
    Operator.of_rows (int_schema ~rel:"U" [ "K" ])
      [ [| v_int 1 |]; [| v_int 2 |] ]
  in
  let j =
    Operator.hash_join ~stats ~probe_key:[ 0 ] ~build_key:[ 0 ] probe build
  in
  let drain op =
    let n = ref 0 in
    let rec go () =
      match Operator.next op with Some _ -> incr n; go () | None -> ()
    in
    go ();
    !n
  in
  Alcotest.(check int) "first drain" 2 (drain j);
  Operator.rewind j;
  Alcotest.(check int) "drain after rewind" 2 (drain j);
  Alcotest.(check int) "build table kept across rewind" 2
    stats.Stats.join_build_rows;
  Operator.close j

let test_operator_semi_join () =
  let mk_probe () =
    Operator.of_rows (int_schema [ "A" ])
      [ [| v_int 1 |]; [| v_int 2 |]; [| v_int 3 |]; [| Value.Null |] ]
  in
  let mk_build () =
    Operator.of_rows (int_schema ~rel:"U" [ "K" ])
      [ [| v_int 2 |]; [| v_int 3 |]; [| v_int 4 |]; [| Value.Null |] ]
  in
  let stats = Stats.create () in
  let semi =
    Operator.semi_join ~stats ~probe_key:[ 0 ] ~build_key:[ 0 ] (mk_probe ())
      (mk_build ())
  in
  Alcotest.(check (list (list int)))
    "semi keeps matches; null keys match nothing"
    [ [ 2 ]; [ 3 ] ]
    (List.map ints_of (Operator.to_rows semi));
  let stats = Stats.create () in
  let anti_eq =
    Operator.semi_join ~anti:true ~null_equal:true ~stats ~probe_key:[ 0 ]
      ~build_key:[ 0 ] (mk_probe ()) (mk_build ())
  in
  Alcotest.(check (list (list int)))
    "anti under the setop total order: NULL = NULL, so only 1 survives"
    [ [ 1 ] ]
    (List.map ints_of (Operator.to_rows anti_eq))

(* ---- planned join orders and the bounded scan cache ---- *)

let test_planned_join_orders_agree () =
  let db =
    Workload.Generator.supplier_db ~suppliers:25 ~parts_per_supplier:3 ()
  in
  let q =
    "SELECT S.SNAME, P.PNO, A.ANO FROM SUPPLIER S, PARTS P, AGENTS A WHERE \
     S.SNO = P.SNO AND A.SNO = S.SNO AND P.COLOR = 'RED'"
  in
  let baseline = run db q in
  let perms =
    [ [ 0; 1; 2 ]; [ 0; 2; 1 ]; [ 1; 0; 2 ]; [ 1; 2; 0 ]; [ 2; 0; 1 ];
      [ 2; 1; 0 ] ]
  in
  List.iter
    (fun perm ->
      let impl =
        Exec.Planned_join
          {
            Exec.jo_first = List.hd perm;
            jo_steps =
              List.map
                (fun l -> { Exec.js_leaf = l; js_unique_build = false; js_merge = false })
                (List.tl perm);
          }
      in
      let cfg = { (Exec.default_config ()) with Exec.join_impl = impl } in
      let r = run ~config:cfg db q in
      Alcotest.(check bool)
        (Printf.sprintf "order [%s] agrees with FROM order"
           (String.concat ";" (List.map string_of_int perm)))
        true
        (Relation.equal_bags baseline r))
    perms;
  (* a plan that is not a permutation of the leaves must fall back to FROM
     order, never misbehave *)
  let bogus =
    Exec.Planned_join
      {
        Exec.jo_first = 0;
        jo_steps = [ { Exec.js_leaf = 0; js_unique_build = true; js_merge = false } ];
      }
  in
  let cfg = { (Exec.default_config ()) with Exec.join_impl = bogus } in
  let r = run ~config:cfg db q in
  Alcotest.(check bool) "bogus plan falls back to FROM order" true
    (Relation.equal_bags baseline r);
  Alcotest.(check int) "fallback grants no unique builds" 0
    cfg.Exec.stats.Stats.unique_builds

let test_planned_unique_build_execution () =
  (* star schema: FACT first, both dimension builds certified unique (K is
     each dimension's primary key) *)
  let db = Workload.Datagen.star_db ~rows:500 () in
  let q = Sql.Parser.parse_query Workload.Datagen.star_query in
  let baseline = Exec.run_query db ~hosts:[] q in
  let impl =
    Exec.Planned_join
      {
        Exec.jo_first = 2;
        jo_steps =
          [ { Exec.js_leaf = 0; js_unique_build = true; js_merge = false };
            { Exec.js_leaf = 1; js_unique_build = true; js_merge = false } ];
      }
  in
  let cfg = { (Exec.default_config ()) with Exec.join_impl = impl } in
  let r = Exec.run_query ~config:cfg db ~hosts:[] q in
  Alcotest.(check bool) "unique-build plan agrees with FROM order" true
    (Relation.equal_bags baseline r);
  Alcotest.(check int) "two unique builds" 2 cfg.Exec.stats.Stats.unique_builds;
  Alcotest.(check int) "every probe early-exits" 1000
    cfg.Exec.stats.Stats.probe_early_exits;
  Alcotest.(check bool) "strategy recorded" true
    (cfg.Exec.stats.Stats.join_strategy = "unique-hash-join,unique-hash-join")

let test_scan_cache_bounded () =
  let db =
    Workload.Generator.supplier_db ~suppliers:10 ~parts_per_supplier:2 ()
  in
  let q =
    "SELECT S.SNO FROM SUPPLIER S, PARTS P, AGENTS A WHERE S.SNO = P.SNO \
     AND A.SNO = S.SNO"
  in
  let baseline = run db q in
  let cfg = { (Exec.default_config ()) with Exec.scan_cache_capacity = 1 } in
  let r = run ~config:cfg db q in
  Alcotest.(check bool) "capacity-1 cache still correct" true
    (Relation.equal_bags baseline r);
  Alcotest.(check bool) "evictions counted" true
    (cfg.Exec.stats.Stats.scan_cache_evictions > 0);
  let cfg2 = Exec.default_config () in
  ignore (run ~config:cfg2 db q);
  Alcotest.(check int) "no evictions at the default capacity" 0
    cfg2.Exec.stats.Stats.scan_cache_evictions

(* ---- duplicate-elimination strategies under the full executor ---- *)

let naive_distinct rows =
  let seen = Relation.Row_tbl.create 64 in
  List.filter
    (fun r ->
      if Relation.Row_tbl.mem seen r then false
      else begin
        Relation.Row_tbl.add seen r ();
        true
      end)
    rows

(* Every strategy must agree with a naive dedup of the SELECT ALL rows, on
   seeded random schemas/queries/instances from the difftest generator. *)
let test_strategies_agree_with_naive () =
  let rng = Random.State.make [| 0x0b5e55ed |] in
  for _ = 1 to 40 do
    let c = Difftest.Case.generate ~rng () in
    match c.Difftest.Case.query with
    | Sql.Ast.Setop _ -> ()
    | Sql.Ast.Spec q ->
      let all_q = Sql.Ast.Spec { q with Sql.Ast.distinct = Sql.Ast.All } in
      let dq = Sql.Ast.Spec { q with Sql.Ast.distinct = Sql.Ast.Distinct } in
      List.iter
        (fun inst ->
          let db = Difftest.Case.database c inst in
          let hosts = inst.Difftest.Case.hosts in
          let bag = Exec.run_query db ~hosts all_q in
          let expect =
            Relation.make bag.Relation.schema (naive_distinct bag.Relation.rows)
          in
          List.iter
            (fun impl ->
              let config =
                { (Exec.default_config ()) with Exec.distinct_impl = impl }
              in
              let r = Exec.run_query ~config db ~hosts dq in
              Alcotest.(check bool) "strategy agrees with naive dedup" true
                (Relation.equal_bags expect r))
            [ Exec.Sort_distinct; Exec.Hash_distinct; Exec.Stream_hash;
              Exec.Stream_sorted ])
        c.Difftest.Case.instances
  done

let test_stream_sorted_fallback () =
  let q = Sql.Parser.parse_query Workload.Datagen.group_query in
  (* key order does not cover the GRP projection: fall back to hash *)
  let db = Workload.Datagen.bulk_db ~rows:2000 () in
  let cfg =
    { (Exec.default_config ()) with Exec.distinct_impl = Exec.Stream_sorted }
  in
  let r = Exec.run_query ~config:cfg db ~hosts:[] q in
  Alcotest.(check int) "fell back exactly once" 1
    cfg.Exec.stats.Stats.sorted_fallbacks;
  Alcotest.(check string) "fallback strategy named" "sorted-unique->hash"
    cfg.Exec.stats.Stats.dedup_strategy;
  let baseline = Exec.run_query db ~hosts:[] q in
  Alcotest.(check bool) "fallback result correct" true
    (Relation.equal_bags baseline r);
  (* group order covers it: no fallback, one row of state *)
  let dbg =
    Workload.Datagen.bulk_db ~rows:2000 ~order:Workload.Datagen.Group_order ()
  in
  let cfg2 =
    { (Exec.default_config ()) with Exec.distinct_impl = Exec.Stream_sorted }
  in
  let r2 = Exec.run_query ~config:cfg2 dbg ~hosts:[] q in
  Alcotest.(check int) "no fallback on covering order" 0
    cfg2.Exec.stats.Stats.sorted_fallbacks;
  Alcotest.(check int) "one row of state" 1
    cfg2.Exec.stats.Stats.dedup_state_peak;
  Alcotest.(check bool) "covered result correct" true
    (Relation.equal_bags baseline r2)

(* The planner may pick the elided pass-through only with an Algorithm 1
   certificate: checked deterministically on the key-covered bulk workload,
   then as a property over seeded random cases. *)
let test_elided_only_when_certified () =
  let cat = Workload.Datagen.catalog in
  let key_q = Sql.Parser.parse_query Workload.Datagen.key_query in
  let grp_q = Sql.Parser.parse_query Workload.Datagen.group_query in
  let db = Workload.Datagen.bulk_db ~rows:2000 () in
  let choice = Optimizer.Distinct_plan.choose ~database:db cat key_q in
  Alcotest.(check bool) "key projection elided" true
    (choice.Optimizer.Distinct_plan.impl = Exec.Stream_elided);
  Alcotest.(check bool) "elision carries the certificate" true
    choice.Optimizer.Distinct_plan.alg1_yes;
  let cfg =
    { (Exec.default_config ()) with Exec.distinct_impl = Exec.Stream_elided }
  in
  let r = Exec.run_query ~config:cfg db ~hosts:[] key_q in
  Alcotest.(check int) "pass-through kept every row" 2000
    (Relation.cardinality r);
  Alcotest.(check int) "elision counted" 1
    cfg.Exec.stats.Stats.distinct_elisions;
  let grp_choice = Optimizer.Distinct_plan.choose ~database:db cat grp_q in
  Alcotest.(check bool) "duplicate-heavy projection not elided" true
    (grp_choice.Optimizer.Distinct_plan.impl <> Exec.Stream_elided);
  (* property: on random cases, an elided plan implies an Algorithm 1 YES *)
  let rng = Random.State.make [| 0xce57 |] in
  for _ = 1 to 40 do
    let c = Difftest.Case.generate ~rng () in
    match c.Difftest.Case.query with
    | Sql.Ast.Setop _ -> ()
    | Sql.Ast.Spec q ->
      let ccat = Difftest.Case.catalog c in
      let dq = Sql.Ast.Spec { q with Sql.Ast.distinct = Sql.Ast.Distinct } in
      List.iter
        (fun inst ->
          let db = Difftest.Case.database c inst in
          let choice = Optimizer.Distinct_plan.choose ~database:db ccat dq in
          if choice.Optimizer.Distinct_plan.impl = Exec.Stream_elided then begin
            let yes =
              try
                Uniqueness.Algorithm1.distinct_is_redundant ccat
                  { q with Sql.Ast.distinct = Sql.Ast.Distinct }
              with _ -> false
            in
            Alcotest.(check bool) "elision independently certified" true yes
          end)
        c.Difftest.Case.instances
  done

(* ---- bulk instance generator and order provenance ---- *)

let test_datagen_valid_and_deterministic () =
  let db = Workload.Datagen.bulk_db ~rows:2000 () in
  Alcotest.(check int) "bulk rows" 2000 (DB.row_count db "BULK");
  Alcotest.(check int) "valid instance" 0 (List.length (DB.validate db));
  Alcotest.(check (list string)) "key order recorded" [ "K" ]
    (DB.order db "BULK");
  let db2 = Workload.Datagen.bulk_db ~rows:2000 () in
  Alcotest.(check bool) "deterministic by seed" true
    (Relation.equal_bags (DB.table db "BULK") (DB.table db2 "BULK"));
  let dbg =
    Workload.Datagen.bulk_db ~rows:2000 ~order:Workload.Datagen.Group_order ()
  in
  Alcotest.(check (list string)) "group order recorded" [ "GRP" ]
    (DB.order dbg "BULK");
  Alcotest.(check bool) "same bag under either physical order" true
    (Relation.equal_bags (DB.table db "BULK") (DB.table dbg "BULK"))

let test_load_sorted_verifies () =
  let cat =
    Catalog.add_ddl Catalog.empty
      "CREATE TABLE T (A INT NOT NULL, B INT, PRIMARY KEY (A))"
  in
  let db = DB.create cat in
  let sorted = [ [| v_int 1; v_int 9 |]; [| v_int 2; v_int 3 |] ] in
  DB.load_sorted db "T" sorted ~order:[ "A" ];
  Alcotest.(check (list string)) "order recorded" [ "A" ] (DB.order db "T");
  (match DB.load_sorted db "T" (List.rev sorted) ~order:[ "A" ] with
  | exception Failure _ -> ()
  | () -> Alcotest.fail "unsorted load accepted");
  (match DB.load_sorted db "T" sorted ~order:[ "NOPE" ] with
  | exception Failure _ -> ()
  | () -> Alcotest.fail "unknown order column accepted");
  DB.load_sorted db "T" sorted ~order:[ "A" ];
  DB.insert db "T" [| v_int 0; v_int 0 |];
  Alcotest.(check (list string)) "insert resets order" [] (DB.order db "T")

let () =
  Alcotest.run "engine"
    [
      ( "exec",
        [
          Alcotest.test_case "scan+project" `Quick test_scan_project;
          Alcotest.test_case "3VL selection" `Quick test_select_3vl;
          Alcotest.test_case "product join" `Quick test_product_join;
          Alcotest.test_case "bag projection keeps duplicates" `Quick
            test_projection_keeps_duplicates;
          Alcotest.test_case "distinct" `Quick test_distinct;
          Alcotest.test_case "distinct equates nulls" `Quick
            test_distinct_null_equivalence;
          Alcotest.test_case "hash distinct agrees with sort" `Quick
            test_hash_distinct_agrees;
          Alcotest.test_case "host variables" `Quick test_host_variables;
          Alcotest.test_case "correlated EXISTS" `Quick test_exists_correlated;
          Alcotest.test_case "NOT EXISTS" `Quick test_not_exists;
          Alcotest.test_case "INTERSECT / INTERSECT ALL" `Quick
            test_intersect_distinct_and_all;
          Alcotest.test_case "EXCEPT / EXCEPT ALL" `Quick
            test_except_distinct_and_all;
          Alcotest.test_case "set ops equate nulls" `Quick
            test_setop_null_handling;
          Alcotest.test_case "hash join agrees with naive" `Quick
            test_hash_join_agrees_with_naive;
          Alcotest.test_case "hash join ignores NULL keys" `Quick
            test_hash_join_null_keys;
          Alcotest.test_case "indexed EXISTS agrees with naive" `Quick
            test_indexed_exists_agrees;
          Alcotest.test_case "stats count sorts" `Quick test_stats_sort_counted;
          Alcotest.test_case "unbound references" `Quick test_unbound_errors;
        ] );
      ( "validate",
        [
          Alcotest.test_case "valid instance" `Quick test_validate_ok;
          Alcotest.test_case "duplicate pk" `Quick test_validate_duplicate_pk;
          Alcotest.test_case "null pk" `Quick test_validate_null_pk;
          Alcotest.test_case "check constraint" `Quick test_validate_check;
          Alcotest.test_case "unique with nulls" `Quick
            test_validate_unique_nulls;
        ] );
      ( "workload",
        [
          Alcotest.test_case "generator produces valid instances" `Quick
            test_generator_valid;
          Alcotest.test_case "scales past 499 suppliers" `Quick
            test_generator_scales_past_499;
          Alcotest.test_case "deterministic by seed" `Quick
            test_generator_deterministic;
          Alcotest.test_case "bulk generator valid and deterministic" `Quick
            test_datagen_valid_and_deterministic;
          Alcotest.test_case "load_sorted verifies its order claim" `Quick
            test_load_sorted_verifies;
        ] );
      ( "operator",
        [
          Alcotest.test_case "order_covers" `Quick test_order_covers;
          Alcotest.test_case "product inherits left order" `Quick
            test_product_order_inherits_left;
          Alcotest.test_case "sorted_unique refuses uncovered order" `Quick
            test_sorted_unique_refuses_uncovered;
          Alcotest.test_case "sorted_unique holds one row of state" `Quick
            test_sorted_unique_one_row_state;
          Alcotest.test_case "elided_unique is a pass-through" `Quick
            test_elided_unique_is_pass_through;
          Alcotest.test_case "hash_unique rewinds cleanly" `Quick
            test_hash_unique_rewind;
          Alcotest.test_case "hash_join streams buckets in build order" `Quick
            test_operator_hash_join;
          Alcotest.test_case "hash_join unique build early-exits" `Quick
            test_operator_hash_join_unique;
          Alcotest.test_case "hash_join rewinds keeping its table" `Quick
            test_operator_hash_join_rewind;
          Alcotest.test_case "semi_join and anti variants" `Quick
            test_operator_semi_join;
        ] );
      ( "join",
        [
          Alcotest.test_case "every planned order agrees" `Quick
            test_planned_join_orders_agree;
          Alcotest.test_case "unique builds execute correctly" `Quick
            test_planned_unique_build_execution;
          Alcotest.test_case "scan cache is bounded and correct" `Quick
            test_scan_cache_bounded;
        ] );
      ( "dedup",
        [
          Alcotest.test_case "strategies agree with naive dedup" `Quick
            test_strategies_agree_with_naive;
          Alcotest.test_case "stream-sorted falls back when uncovered" `Quick
            test_stream_sorted_fallback;
          Alcotest.test_case "elision requires an Algorithm 1 certificate"
            `Quick test_elided_only_when_certified;
        ] );
    ]
