(* Tests for 3VL predicate evaluation, normal forms, and the equality
   machinery that Algorithm 1 builds on. *)

open Sql.Ast
module Attr = Schema.Attr
module Truth = Sqlval.Truth
module Value = Sqlval.Value
module G = Testsupport.Gen_sql

let truth = Alcotest.testable Truth.pp Truth.equal

let env_of_list cols hosts =
  {
    G.cols =
      List.fold_left
        (fun m (a, v) -> Attr.Map.add (Attr.of_string a) v m)
        Attr.Map.empty cols;
    G.host_vals = hosts;
  }

let eval env p = G.eval env p

(* ---- evaluation ---- *)

let test_eval_null_semantics () =
  let env = env_of_list [ ("R.A", Value.Null); ("R.B", Value.Int 2) ] [] in
  let p s = Sql.Parser.parse_pred s in
  Alcotest.check truth "null = 2 unknown" Truth.Unknown (eval env (p "R.A = 2"));
  Alcotest.check truth "null = null unknown" Truth.Unknown
    (eval env (p "R.A = R.A"));
  Alcotest.check truth "is null" Truth.True (eval env (p "R.A IS NULL"));
  Alcotest.check truth "b is not null" Truth.True (eval env (p "R.B IS NOT NULL"));
  (* unknown AND false = false; unknown OR true = true *)
  Alcotest.check truth "unknown and false" Truth.False
    (eval env (p "R.A = 2 AND R.B = 3"));
  Alcotest.check truth "unknown or true" Truth.True
    (eval env (p "R.A = 2 OR R.B = 2"));
  Alcotest.check truth "not unknown" Truth.Unknown (eval env (p "NOT R.A = 2"))

let test_eval_between_in () =
  let env = env_of_list [ ("R.A", Value.Int 5) ] [] in
  let p s = Sql.Parser.parse_pred s in
  Alcotest.check truth "between hit" Truth.True (eval env (p "R.A BETWEEN 1 AND 10"));
  Alcotest.check truth "between miss" Truth.False (eval env (p "R.A BETWEEN 6 AND 10"));
  Alcotest.check truth "in hit" Truth.True (eval env (p "R.A IN (1, 5, 9)"));
  Alcotest.check truth "in miss" Truth.False (eval env (p "R.A IN (1, 2)"));
  let envn = env_of_list [ ("R.A", Value.Null) ] [] in
  Alcotest.check truth "null between" Truth.Unknown
    (eval envn (p "R.A BETWEEN 1 AND 10"));
  Alcotest.check truth "null in" Truth.Unknown (eval envn (p "R.A IN (1, 2)"))

let test_eval_hosts () =
  let env = env_of_list [ ("R.A", Value.Int 7) ] [ ("X", Value.Int 7) ] in
  Alcotest.check truth "host hit" Truth.True
    (eval env (Sql.Parser.parse_pred "R.A = :X"))

(* ---- normal forms preserve 3VL truth ---- *)

let prop_preserves env_eval name transform =
  QCheck2.Test.make ~name ~count:1000 ~print:G.pred_env_print
    G.pred_and_env_gen (fun (p, env) ->
      Truth.equal (env_eval env p) (env_eval env (transform p)))

let prop_expand = prop_preserves eval "NNF expansion preserves 3VL truth" Logic.Norm.expand

let prop_cnf =
  prop_preserves eval "CNF conversion preserves 3VL truth" (fun p ->
      Logic.Norm.pred_of_cnf (Logic.Norm.cnf_of_pred p))

let prop_dnf =
  prop_preserves eval "DNF conversion preserves 3VL truth" (fun p ->
      Logic.Norm.pred_of_dnf (Logic.Norm.dnf_of_pred p))

let prop_simplify = prop_preserves eval "simplify preserves 3VL truth" Logic.Norm.simplify

(* budgeted entry points: when the conversion fits the budget it must be
   truth-preserving; a tiny budget must fall back soundly (we keep p) *)
let prop_cnf_budgeted =
  prop_preserves eval "budgeted CNF preserves truth when within budget"
    (fun p ->
      match Logic.Norm.cnf_of_pred_budgeted ~budget:32 p with
      | Logic.Norm.Within cnf -> Logic.Norm.pred_of_cnf cnf
      | Logic.Norm.Exceeded _ -> p)

let prop_dnf_budgeted =
  prop_preserves eval "budgeted DNF preserves truth when within budget"
    (fun p ->
      match Logic.Norm.dnf_of_pred_budgeted ~budget:32 p with
      | Logic.Norm.Within dnf -> Logic.Norm.pred_of_dnf dnf
      | Logic.Norm.Exceeded _ -> p)

(* The odometer stream does no cross-conjunct dedup, so a random CNF's
   full product can be astronomically large; cap it and keep p on
   overflow, mirroring how Algorithm 1 consumes the stream. *)
let prop_dnf_stream =
  prop_preserves eval "streaming DNF of the CNF preserves truth" (fun p ->
      match
        Logic.Norm.dnf_of_cnf_budgeted ~budget:512 (Logic.Norm.cnf_of_pred p)
      with
      | Logic.Norm.Within dnf -> Logic.Norm.pred_of_dnf dnf
      | Logic.Norm.Exceeded _ -> p)

let prop_cnf_shape =
  QCheck2.Test.make ~name:"CNF clauses contain only literals" ~count:300
    ~print:G.pred_print G.pred_gen (fun p ->
      List.for_all
        (List.for_all (function
          | And _ | Or _ -> false
          | Not (Exists _) -> true
          | Not _ -> false
          | _ -> true))
        (Logic.Norm.cnf_of_pred p))

(* ---- the budgeted conversion engine ---- *)

let mkattr s = Attr.of_string s

let test_empty_in_list () =
  (* IN over an empty list is vacuously false; its negation is vacuously
     true — both polarities must normalize to the constant, not to an
     empty disjunction that downstream code misreads *)
  let c = Col (mkattr "R.A") in
  (match Logic.Norm.expand (In_list (c, [])) with
   | Pfalse -> ()
   | p -> Alcotest.failf "positive empty IN-list: %s" (G.pred_print p));
  match Logic.Norm.expand (Not (In_list (c, []))) with
  | Ptrue -> ()
  | p -> Alcotest.failf "negated empty IN-list: %s" (G.pred_print p)

(* OR of [n] two-literal conjunctions with pairwise-distinct atoms: the CNF
   is exactly 2^n distinct clauses, so n = 13 blows the 4096 default *)
let wide_or n =
  let col i = Col (mkattr (Printf.sprintf "R.C%d" i)) in
  let disjunct i =
    And
      (Cmp (Eq, col (2 * i), Const (Value.Int i)),
       Cmp (Eq, col ((2 * i) + 1), Const (Value.Int i)))
  in
  List.fold_left
    (fun acc i -> Or (acc, disjunct i))
    (disjunct 0)
    (List.init (n - 1) (fun i -> i + 1))

let test_budget_exceeded () =
  let p = wide_or 13 in
  (match Logic.Norm.cnf_of_pred_budgeted p with
   | Logic.Norm.Exceeded { budget } ->
     Alcotest.(check int) "default budget" Logic.Norm.default_budget budget
   | Logic.Norm.Within _ -> Alcotest.fail "2^13 clauses must blow 4096");
  Alcotest.(check bool) "evidence miners soundly see no clauses" true
    (Logic.Norm.usable_clauses p = []);
  (* a budget that fits materializes the full distribution: the atoms are
     pairwise distinct, so neither dedup nor subsumption can shrink it *)
  match Logic.Norm.cnf_of_pred_budgeted ~budget:10_000 p with
  | Logic.Norm.Within cnf -> Alcotest.(check int) "8192 clauses" 8192 (List.length cnf)
  | Logic.Norm.Exceeded _ -> Alcotest.fail "a 10k budget suffices for 2^13"

let test_dnf_stream_odometer () =
  let lit i = Cmp (Eq, Col (mkattr (Printf.sprintf "R.L%d" i)), Const (Value.Int i)) in
  Alcotest.(check bool) "rightmost clause varies fastest" true
    (Logic.Norm.dnf_of_cnf [ [ lit 0; lit 1 ]; [ lit 2 ] ]
     = [ [ lit 0; lit 2 ]; [ lit 1; lit 2 ] ]);
  Alcotest.(check bool) "an empty clause kills every conjunct" true
    (Logic.Norm.dnf_of_cnf [ [ lit 0 ]; [] ] = []);
  Alcotest.(check bool) "no clauses is TRUE: one empty conjunct" true
    (Logic.Norm.dnf_of_cnf [] = [ [] ]);
  Alcotest.(check bool) "a literal drawn twice appears once" true
    (Logic.Norm.dnf_of_cnf [ [ lit 0 ]; [ lit 0 ] ] = [ [ lit 0 ] ]);
  (match
     Logic.Norm.dnf_of_cnf_budgeted ~budget:3 [ [ lit 0; lit 1 ]; [ lit 2; lit 3 ] ]
   with
   | Logic.Norm.Exceeded { budget = 3 } -> ()
   | _ -> Alcotest.fail "4 conjuncts must exceed a budget of 3");
  (* the stream never materializes the product: taking 4 of 2^20 is cheap *)
  let big = List.init 20 (fun i -> [ lit (2 * i); lit ((2 * i) + 1) ]) in
  let taken = List.of_seq (Seq.take 4 (Logic.Norm.dnf_seq_of_cnf big)) in
  Alcotest.(check int) "lazy prefix" 4 (List.length taken)

(* random predicates over rows drawn from the difftest instance generator:
   the normal forms must agree with Eval on realistic data (NULLs, strings,
   booleans, empty IN lists), not only the hand-rolled environments above *)
let rand_pred_over rng cols =
  let module R = Schema.Relschema in
  let pick xs = List.nth xs (Random.State.int rng (List.length xs)) in
  let const_for = function
    | R.Tint -> Value.Int (Random.State.int rng 4)
    | R.Tstring -> Value.String (pick [ "a"; "b"; "c" ])
    | R.Tbool -> Value.Bool (Random.State.bool rng)
    | R.Tfloat -> Value.Float (float_of_int (Random.State.int rng 4))
  in
  let atom () =
    let a, ty = pick cols in
    let c = Col a in
    match Random.State.int rng 6 with
    | 0 -> Cmp (pick [ Eq; Ne; Lt; Le; Gt; Ge ], c, Const (const_for ty))
    | 1 ->
      (match List.filter (fun (_, ty') -> ty' = ty) cols with
       | [] -> Cmp (Eq, c, Const (const_for ty))
       | peers -> Cmp (Eq, c, Col (fst (pick peers))))
    | 2 -> if Random.State.bool rng then Is_null c else Is_not_null c
    | 3 ->
      (* 0..2 members: exercises the empty IN-list edge *)
      let n = Random.State.int rng 3 in
      In_list (c, List.init n (fun _ -> const_for ty))
    | 4 when ty = R.Tint ->
      let lo = Random.State.int rng 3 in
      Between (c, Const (Value.Int lo), Const (Value.Int (lo + Random.State.int rng 3)))
    | _ -> Cmp (pick [ Eq; Ne; Lt; Le; Gt; Ge ], c, Const (const_for ty))
  in
  let rec go depth =
    if depth = 0 then atom ()
    else
      match Random.State.int rng 4 with
      | 0 -> And (go (depth - 1), go (depth - 1))
      | 1 -> Or (go (depth - 1), go (depth - 1))
      | 2 -> Not (go (depth - 1))
      | _ -> atom ()
  in
  go 3

let prop_normal_forms_on_instances =
  QCheck2.Test.make
    ~name:"normal forms agree with Eval on difftest instances" ~count:150
    QCheck2.Gen.int
    (fun seed ->
      let rng = Random.State.make [| seed |] in
      let ddl = Difftest.Schema_gen.generate ~rng in
      let cat = Difftest.Schema_gen.catalog_of_ddl ddl in
      let tables = Difftest.Instance_gen.tables ~rng ~rows:5 cat in
      List.for_all
        (fun (name, rows) ->
          let def = Catalog.find_exn cat name in
          let cols =
            List.map
              (fun (c : Schema.Relschema.column) ->
                (c.Schema.Relschema.attr, c.Schema.Relschema.ctype))
              (Schema.Relschema.columns def.Catalog.tbl_schema)
          in
          let p = rand_pred_over rng cols in
          let variants =
            [ Logic.Norm.pred_of_cnf (Logic.Norm.cnf_of_pred p);
              Logic.Norm.pred_of_dnf (Logic.Norm.dnf_of_pred p);
              (match
                 Logic.Norm.dnf_of_cnf_budgeted ~budget:512
                   (Logic.Norm.cnf_of_pred p)
               with
              | Logic.Norm.Within dnf -> Logic.Norm.pred_of_dnf dnf
              | Logic.Norm.Exceeded _ -> p);
              (match Logic.Norm.cnf_of_pred_budgeted ~budget:16 p with
               | Logic.Norm.Within cnf -> Logic.Norm.pred_of_cnf cnf
               | Logic.Norm.Exceeded _ -> p);
              (match Logic.Norm.dnf_of_pred_budgeted ~budget:16 p with
               | Logic.Norm.Within dnf -> Logic.Norm.pred_of_dnf dnf
               | Logic.Norm.Exceeded _ -> p) ]
          in
          List.for_all
            (fun row ->
              let binding =
                List.fold_left2
                  (fun m (a, _) v -> Attr.Map.add a v m)
                  Attr.Map.empty cols (Array.to_list row)
              in
              let ev q =
                Logic.Eval.eval_pred_simple
                  ~lookup_col:(fun a ->
                    match Attr.Map.find_opt a binding with
                    | Some v -> v
                    | None -> raise (Logic.Eval.Unbound_column a))
                  ~lookup_host:(fun h -> raise (Logic.Eval.Unbound_host h))
                  q
              in
              let reference = ev p in
              List.for_all (fun q -> Truth.equal reference (ev q)) variants)
            rows)
        tables)

(* ---- equalities ---- *)

let test_classify () =
  let lit s = Sql.Parser.parse_pred s in
  (match Logic.Equalities.of_literal (lit "R.A = 5") with
   | Some (Logic.Equalities.Type1 (_, Logic.Equalities.Const (Value.Int 5))) -> ()
   | _ -> Alcotest.fail "type1 const");
  (match Logic.Equalities.of_literal (lit "R.A = :H") with
   | Some (Logic.Equalities.Type1 (_, Logic.Equalities.Host "H")) -> ()
   | _ -> Alcotest.fail "type1 host");
  (match Logic.Equalities.of_literal (lit "R.A = S.B") with
   | Some (Logic.Equalities.Type2 (_, _)) -> ()
   | _ -> Alcotest.fail "type2");
  (match Logic.Equalities.of_literal (lit "R.A < 5") with
   | None -> ()
   | Some _ -> Alcotest.fail "non-equality");
  match Logic.Equalities.of_literal (lit "5 = R.A") with
  | Some (Logic.Equalities.Type1 _) -> ()
  | _ -> Alcotest.fail "reversed const"

let attr s = Attr.of_string s

let test_closure () =
  let eqs =
    [ Logic.Equalities.Type2 (attr "R.A", attr "S.B");
      Logic.Equalities.Type2 (attr "S.B", attr "S.C");
      Logic.Equalities.Type1 (attr "T.D", Logic.Equalities.Const (Value.Int 1)) ]
  in
  let seed = Attr.Set.singleton (attr "R.A") in
  let cl = Logic.Equalities.closure seed eqs in
  Alcotest.(check bool) "A in" true (Attr.Set.mem (attr "R.A") cl);
  Alcotest.(check bool) "B via type2" true (Attr.Set.mem (attr "S.B") cl);
  Alcotest.(check bool) "C transitively" true (Attr.Set.mem (attr "S.C") cl);
  Alcotest.(check bool) "D via type1" true (Attr.Set.mem (attr "T.D") cl);
  Alcotest.(check int) "size" 4 (Attr.Set.cardinal cl)

let test_closure_reverse_direction () =
  (* closure must propagate both ways across Type-2 equalities *)
  let eqs = [ Logic.Equalities.Type2 (attr "S.B", attr "R.A") ] in
  let cl = Logic.Equalities.closure (Attr.Set.singleton (attr "R.A")) eqs in
  Alcotest.(check bool) "B reached" true (Attr.Set.mem (attr "S.B") cl)

let test_classes () =
  let eqs =
    [ Logic.Equalities.Type2 (attr "R.A", attr "S.B");
      Logic.Equalities.Type1 (attr "S.B", Logic.Equalities.Const (Value.Int 9));
      Logic.Equalities.Type2 (attr "S.C", attr "T.D") ]
  in
  let c = Logic.Equalities.Classes.build eqs in
  Alcotest.(check bool) "A~B" true
    (Logic.Equalities.Classes.same c (attr "R.A") (attr "S.B"));
  Alcotest.(check bool) "A!~C" false
    (Logic.Equalities.Classes.same c (attr "R.A") (attr "S.C"));
  (match Logic.Equalities.Classes.binding c (attr "R.A") with
   | Some (Logic.Equalities.Const (Value.Int 9)) -> ()
   | _ -> Alcotest.fail "A bound to 9 through its class");
  match Logic.Equalities.Classes.binding c (attr "S.C") with
  | None -> ()
  | Some _ -> Alcotest.fail "C unbound"

let test_split () =
  let lits =
    [ Sql.Parser.parse_pred "R.A = 1";
      Sql.Parser.parse_pred "R.A < 5";
      Sql.Parser.parse_pred "R.B = S.C" ]
  in
  let eqs, rest = Logic.Equalities.split lits in
  Alcotest.(check int) "two equalities" 2 (List.length eqs);
  Alcotest.(check int) "one residual" 1 (List.length rest)

(* ---- closure engines agree ---- *)

(* Untraced + memo off runs the union-find engine; a live trace runs the
   step-narrating sweep. Both must compute the same closure. *)
let prop_uf_closure_matches_direct =
  QCheck2.Test.make
    ~name:"union-find closure equals the traced saturation closure"
    ~count:500 QCheck2.Gen.int
    (fun seed ->
      let rng = Random.State.make [| seed |] in
      let attrs =
        Array.init 12 (fun i -> attr (Printf.sprintf "R%d.C%d" (i mod 3) i))
      in
      let any () = attrs.(Random.State.int rng (Array.length attrs)) in
      let eqs =
        List.init
          (Random.State.int rng 16)
          (fun _ ->
            if Random.State.int rng 4 = 0 then
              Logic.Equalities.Type1 (any (), Logic.Equalities.Const (Value.Int 1))
            else Logic.Equalities.Type2 (any (), any ()))
      in
      let seed_set =
        Array.fold_left
          (fun acc a -> if Random.State.bool rng then Attr.Set.add a acc else acc)
          Attr.Set.empty attrs
      in
      let uf = Logic.Equalities.closure seed_set eqs in
      let direct = Logic.Equalities.closure ~trace:(Trace.make ()) seed_set eqs in
      Attr.Set.equal uf direct)

let prop_saturate_engines_agree =
  QCheck2.Test.make ~name:"linear closure engine equals the sweep fixpoint"
    ~count:500 QCheck2.Gen.int
    (fun seed ->
      let rng = Random.State.make [| seed |] in
      let bits () =
        Cache.Bitset.of_list
          (List.init (Random.State.int rng 4) (fun _ -> Random.State.int rng 24))
      in
      let pairs =
        List.init (Random.State.int rng 12) (fun _ -> (bits (), bits ()))
      in
      let s = bits () in
      Cache.Bitset.equal
        (Cache.Runtime.saturate_linear pairs s)
        (Cache.Runtime.saturate_sweep pairs s))

let () =
  Alcotest.run "logic"
    [
      ( "eval",
        [
          Alcotest.test_case "null semantics" `Quick test_eval_null_semantics;
          Alcotest.test_case "between/in" `Quick test_eval_between_in;
          Alcotest.test_case "host variables" `Quick test_eval_hosts;
        ] );
      ( "normal-forms",
        List.map QCheck_alcotest.to_alcotest
          [ prop_expand; prop_cnf; prop_dnf; prop_simplify; prop_cnf_shape;
            prop_cnf_budgeted; prop_dnf_budgeted; prop_dnf_stream;
            prop_normal_forms_on_instances ] );
      ( "budget-engine",
        [
          Alcotest.test_case "empty IN-list, both polarities" `Quick
            test_empty_in_list;
          Alcotest.test_case "budget blowout" `Quick test_budget_exceeded;
          Alcotest.test_case "streaming DNF odometer" `Quick
            test_dnf_stream_odometer;
        ] );
      ( "closure-engines",
        List.map QCheck_alcotest.to_alcotest
          [ prop_uf_closure_matches_direct; prop_saturate_engines_agree ] );
      ( "equalities",
        [
          Alcotest.test_case "classification" `Quick test_classify;
          Alcotest.test_case "closure" `Quick test_closure;
          Alcotest.test_case "closure is symmetric" `Quick
            test_closure_reverse_direction;
          Alcotest.test_case "equivalence classes" `Quick test_classes;
          Alcotest.test_case "split" `Quick test_split;
        ] );
    ]
