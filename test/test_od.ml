(* Order-dependency tests: the shared Dependency_closure functor checked
   against Fdset.closure on both saturation engines, the Odset.covers
   axioms (prefix, constants, key skips, equality canonicalization),
   order-provenance survival through projections/filters/products, and
   the NULLS FIRST placement shared byte-for-byte by Operator.sort,
   Operator.merge_join and Database.load_sorted. *)

module Attr = Schema.Attr
module Value = Sqlval.Value
module Fdset = Fd.Fdset
module Odset = Od.Odset
module Operator = Engine.Operator
module DB = Engine.Database
module Exec = Engine.Exec
module G = Testsupport.Gen_sql

let attr s = Attr.of_string s
let attrs l = List.map attr l
let attr_set l = Attr.set_of_list (attrs l)
let fd lhs rhs = Fdset.make_fd (attrs lhs) (attrs rhs)
let od lhs rhs = Odset.make_od (attrs lhs) (attrs rhs)

let set = Alcotest.testable Attr.pp_set Attr.Set.equal

(* ---- Dependency_closure at FDs must reproduce Fdset.closure ---- *)

(* A second instantiation of the functor over the same FD encoding
   Fdset uses internally: set(lhs) acquires set(rhs). Agreement with
   Fdset.closure on both engines is what licenses sharing the plumbing
   across dependency classes. *)
module Fd_closure = Cache.Dependency_closure.Make (struct
  type dep = Fdset.fd

  let tag = 'F'

  let encode (d : dep) =
    [ (Cache.Interner.bits_of_set d.Fdset.lhs,
       Cache.Interner.bits_of_set d.Fdset.rhs) ]
end)

let attr_subset_gen : Attr.Set.t QCheck2.Gen.t =
  let open QCheck2.Gen in
  map
    (fun picks ->
      Attr.set_of_list (List.filteri (fun i _ -> List.nth picks i) G.columns))
    (list_repeat (List.length G.columns) bool)

let small_fds_gen : Fdset.t QCheck2.Gen.t =
  let open QCheck2.Gen in
  map
    (fun pairs ->
      Fdset.of_list (List.map (fun (l, r) -> { Fdset.lhs = l; rhs = r }) pairs))
    (list_size (int_range 0 5) (pair attr_subset_gen attr_subset_gen))

let functor_matches_fdset engine =
  QCheck2.Test.make
    ~name:
      (Printf.sprintf "Dependency_closure = Fdset.closure (%s engine)"
         (match engine with `Linear -> "linear" | `Sweep -> "sweep"))
    ~count:300
    QCheck2.Gen.(pair small_fds_gen attr_subset_gen)
    (fun (fds, xs) ->
      let previous = Cache.Runtime.current_engine () in
      Cache.Runtime.set_engine engine;
      let via_functor = Fd_closure.closure (Fdset.to_list fds) xs in
      let via_fdset = Fdset.closure fds xs in
      Cache.Runtime.set_engine previous;
      Attr.Set.equal via_functor via_fdset)

let prop_functor_linear = functor_matches_fdset `Linear
let prop_functor_sweep = functor_matches_fdset `Sweep

let prop_subsumes_agrees =
  QCheck2.Test.make ~name:"subsumes = subset-of-closure" ~count:300
    QCheck2.Gen.(triple small_fds_gen attr_subset_gen attr_subset_gen)
    (fun (fds, xs, ys) ->
      Bool.equal
        (Fd_closure.subsumes (Fdset.to_list fds) xs ys)
        (Attr.Set.subset ys (Fdset.closure fds xs)))

(* ---- Odset.covers: the elision walk ---- *)

let test_covers_prefix () =
  let stream = attrs [ "T.A"; "T.B"; "T.C" ] in
  Alcotest.(check bool) "prefix covered" true
    (Odset.covers Odset.empty ~stream (attrs [ "T.A"; "T.B" ]));
  Alcotest.(check bool) "full list covered" true
    (Odset.covers Odset.empty ~stream (attrs [ "T.A"; "T.B"; "T.C" ]));
  Alcotest.(check bool) "non-prefix refused" false
    (Odset.covers Odset.empty ~stream (attrs [ "T.B" ]));
  Alcotest.(check bool) "swap refused" false
    (Odset.covers Odset.empty ~stream (attrs [ "T.B"; "T.A" ]))

let test_covers_constant () =
  (* WHERE A = 5 yields the constant FD {} -> A: A is droppable from the
     keys and skippable in the stream *)
  let fds = Fdset.of_list [ fd [] [ "T.A" ] ] in
  Alcotest.(check bool) "constant key skipped" true
    (Odset.covers ~fds Odset.empty ~stream:(attrs [ "T.B" ])
       (attrs [ "T.A"; "T.B" ]));
  Alcotest.(check bool) "constant stream head skipped" true
    (Odset.covers ~fds Odset.empty ~stream:(attrs [ "T.A"; "T.B" ])
       (attrs [ "T.B" ]));
  Alcotest.(check bool) "without the FD both are refused" false
    (Odset.covers Odset.empty ~stream:(attrs [ "T.B" ])
       (attrs [ "T.A"; "T.B" ]))

let test_covers_key_prefix () =
  (* K a candidate key: once consumed, every remaining key column is
     constant within a tie group — ORDER BY K, anything is covered by a
     stream sorted on K alone (the FD→OD interaction) *)
  let fds = Fdset.of_list [ fd [ "T.K" ] [ "T.A"; "T.B" ] ] in
  Alcotest.(check bool) "key prefix determines the rest" true
    (Odset.covers ~fds Odset.empty ~stream:(attrs [ "T.K" ])
       (attrs [ "T.K"; "T.B"; "T.A" ]));
  Alcotest.(check bool) "key must still lead" false
    (Odset.covers ~fds Odset.empty ~stream:(attrs [ "T.K" ])
       (attrs [ "T.B"; "T.K" ]))

let test_covers_equality_classes () =
  (* WHERE B = C: equated columns are interchangeable in order lists *)
  let canon a =
    if Attr.equal a (attr "T.C") then attr "T.B" else a
  in
  Alcotest.(check bool) "equated column substitutes" true
    (Odset.covers ~equiv:canon Odset.empty ~stream:(attrs [ "T.A"; "T.B" ])
       (attrs [ "T.A"; "T.C" ]));
  Alcotest.(check bool) "without the equality it is refused" false
    (Odset.covers Odset.empty ~stream:(attrs [ "T.A"; "T.B" ])
       (attrs [ "T.A"; "T.C" ]))

let test_covers_transitivity () =
  (* a stored OD A |-> B chains through the walk *)
  let ods = Odset.of_list [ od [ "T.A" ] [ "T.B" ] ] in
  Alcotest.(check bool) "stored OD applies" true
    (Odset.covers ods ~stream:(attrs [ "T.A" ]) (attrs [ "T.B" ]));
  Alcotest.(check bool) "reverse not implied" false
    (Odset.covers ods ~stream:(attrs [ "T.B" ]) (attrs [ "T.A" ]));
  Alcotest.(check bool) "implies agrees" true
    (Odset.implies ods (od [ "T.A" ] [ "T.B" ]))

let test_reach_refutes () =
  (* reach is a sound necessary condition: an attribute outside the
     projection can never be covered *)
  let reach =
    Odset.reach
      ~fds:(Fdset.of_list [ fd [ "T.A" ] [ "T.B" ] ])
      (Odset.of_list [ od [ "T.B" ] [ "T.C" ] ])
      (attr_set [ "T.A" ])
  in
  Alcotest.check set "reach saturates FDs and ODs"
    (attr_set [ "T.A"; "T.B"; "T.C" ])
    reach;
  Alcotest.(check bool) "unreachable key refused" false
    (Odset.covers Odset.empty ~stream:(attrs [ "T.A" ]) (attrs [ "T.D" ]))

(* ---- order provenance through the executor ---- *)

let bulk_db rows = Workload.Datagen.bulk_db ~rows ~order:Workload.Datagen.Key_order ()
let bulk_cat = Workload.Datagen.catalog

let stream_order db sql =
  match Exec.order_stream db (Sql.Parser.parse_query sql) with
  | None -> Alcotest.fail ("no ORDER BY stream for: " ^ sql)
  | Some (_, _, order) -> order

let test_projection_duplicate_attrs () =
  (* a projection listing K twice keeps BOTH copies in the provenance:
     the prefix walk must survive duplicate output columns *)
  let db = bulk_db 20 in
  let order =
    stream_order db "SELECT B.K, B.GRP, B.K FROM BULK B ORDER BY B.K"
  in
  (* the second copy is renamed by the projection (K_3) but must still
     appear in the provenance — the prefix walk sees both *)
  Alcotest.(check int) "both K copies in the verified order" 2
    (List.length order);
  Alcotest.(check bool) "the original copy leads" true
    (match order with a :: _ -> String.equal a.Attr.name "K" | [] -> false);
  let choice =
    Optimizer.Order_plan.choose ~database:db bulk_cat
      (Sql.Parser.parse_query "SELECT B.K, B.GRP, B.K FROM BULK B ORDER BY B.K")
  in
  Alcotest.(check bool) "duplicate projection still elides" true
    (choice.Optimizer.Order_plan.impl = Exec.Elided_sort)

let test_filter_preserves_order () =
  let db = bulk_db 20 in
  let order =
    stream_order db "SELECT B.K FROM BULK B WHERE B.GRP = 0 ORDER BY B.K"
  in
  Alcotest.(check bool) "filter keeps the scan order" true
    (match order with a :: _ -> String.equal a.Attr.name "K" | [] -> false)

let test_product_keeps_left_order () =
  let db = Workload.Datagen.pair_db ~rows:10 () in
  let order =
    stream_order db
      "SELECT L.K, R.W FROM LHS L, RHS R ORDER BY L.K"
  in
  (* product order is the left input's: L.K leads even though R is also
     sorted on its own key *)
  Alcotest.(check bool) "left order survives the product" true
    (match order with
     | a :: _ -> Attr.equal a (Attr.make ~rel:"L" ~name:"K")
     | [] -> false)

let test_order_covers_duplicate_projection () =
  (* Operator.order_covers over a schema with duplicate attribute names:
     a prefix of the order equal to the full attribute set covers *)
  let schema =
    Schema.Relschema.make
      [ { Schema.Relschema.attr = attr "T.K"; ctype = Schema.Relschema.Tint;
          nullable = false };
        { Schema.Relschema.attr = attr "T.V"; ctype = Schema.Relschema.Tint;
          nullable = true } ]
  in
  Alcotest.(check bool) "covering prefix" true
    (Operator.order_covers schema (attrs [ "T.K"; "T.V" ]));
  Alcotest.(check bool) "short prefix does not cover" false
    (Operator.order_covers schema (attrs [ "T.K" ]))

(* ---- NULLS FIRST: one comparator everywhere ---- *)

let null_schema =
  Schema.Relschema.make
    [ { Schema.Relschema.attr = attr "T.K"; ctype = Schema.Relschema.Tint;
        nullable = true };
      { Schema.Relschema.attr = attr "T.V"; ctype = Schema.Relschema.Tint;
        nullable = true } ]

let null_rows =
  [ [| Value.Null; Value.Int 7 |];
    [| Value.Null; Value.Int 3 |];
    [| Value.Int 1; Value.Int 5 |];
    [| Value.Int 2; Value.Null |] ]

let test_sort_places_nulls_first () =
  let stats = Engine.Stats.create () in
  let shuffled =
    [ [| Value.Int 2; Value.Null |];
      [| Value.Null; Value.Int 7 |];
      [| Value.Int 1; Value.Int 5 |];
      [| Value.Null; Value.Int 3 |] ]
  in
  let sorted =
    Operator.to_rows
      (Operator.sort ~stats (attrs [ "T.K" ])
         (Operator.of_rows null_schema shuffled))
  in
  (* NULL keys lead, and the sort is stable: the two NULL rows keep
     their input order (7 before 3) *)
  (match sorted with
   | [ a; b; c; d ] ->
     Alcotest.(check bool) "nulls first" true
       (a.(0) = Value.Null && b.(0) = Value.Null);
     Alcotest.(check bool) "stable among equals" true
       (a.(1) = Value.Int 7 && b.(1) = Value.Int 3);
     Alcotest.(check bool) "non-nulls ascending" true
       (c.(0) = Value.Int 1 && d.(0) = Value.Int 2)
   | _ -> Alcotest.fail "sort changed cardinality");
  (* byte-for-byte the comparator of load_sorted: the sorted output is
     accepted as a physical order claim *)
  let cat =
    Catalog.add_ddl Catalog.empty "CREATE TABLE T (K INT, V INT)"
  in
  let db = DB.create cat in
  DB.load_sorted db "T" sorted ~order:[ "K" ];
  Alcotest.(check (list string)) "verified order recorded" [ "K" ]
    (DB.order db "T")

let test_load_sorted_rejects_nulls_last () =
  let cat = Catalog.add_ddl Catalog.empty "CREATE TABLE T (K INT, V INT)" in
  let db = DB.create cat in
  let nulls_last =
    [ [| Value.Int 1; Value.Int 5 |]; [| Value.Null; Value.Int 7 |] ]
  in
  Alcotest.(check bool) "nulls-last load is refused" true
    (try
       DB.load_sorted db "T" nulls_last ~order:[ "K" ];
       false
     with Failure _ -> true)

let test_merge_join_agrees_on_nulls () =
  (* NULL join keys match nothing and are dropped from both sides — the
     merge walk must agree with the hash join byte-for-byte even when
     the (null-first) sorted inputs lead with NULL keys *)
  let probe () = Operator.of_rows ~order:(attrs [ "T.K" ]) null_schema null_rows in
  let build_schema =
    Schema.Relschema.make
      [ { Schema.Relschema.attr = attr "S.K"; ctype = Schema.Relschema.Tint;
          nullable = true };
        { Schema.Relschema.attr = attr "S.W"; ctype = Schema.Relschema.Tint;
          nullable = true } ]
  in
  let build_rows =
    [ [| Value.Null; Value.Int 9 |];
      [| Value.Int 1; Value.Int 11 |];
      [| Value.Int 1; Value.Int 12 |];
      [| Value.Int 3; Value.Int 13 |] ]
  in
  let build () = Operator.of_rows ~order:(attrs [ "S.K" ]) build_schema build_rows in
  let stats = Engine.Stats.create () in
  let merged =
    Operator.to_rows
      (Operator.merge_join ~stats ~probe_key:[ 0 ] ~build_key:[ 0 ]
         (probe ()) (build ()))
  in
  let hashed =
    Operator.to_rows
      (Operator.hash_join ~stats ~probe_key:[ 0 ] ~build_key:[ 0 ]
         (probe ()) (build ()))
  in
  Alcotest.(check int) "merge counted" 1 stats.Engine.Stats.merge_joins;
  Alcotest.(check bool) "merge = hash, list-equal" true
    (List.length merged = List.length hashed
     && List.for_all2 Engine.Relation.equal_rows merged hashed);
  (* only the K=1 probe row matches (twice); NULLs on both sides drop *)
  Alcotest.(check int) "null keys dropped" 2 (List.length merged)

let () =
  Alcotest.run "od"
    [
      ( "dependency-closure",
        List.map QCheck_alcotest.to_alcotest
          [ prop_functor_linear; prop_functor_sweep; prop_subsumes_agrees ] );
      ( "covers",
        [
          Alcotest.test_case "prefix" `Quick test_covers_prefix;
          Alcotest.test_case "constants skip" `Quick test_covers_constant;
          Alcotest.test_case "key prefix determines the rest" `Quick
            test_covers_key_prefix;
          Alcotest.test_case "equality classes substitute" `Quick
            test_covers_equality_classes;
          Alcotest.test_case "stored-OD transitivity" `Quick
            test_covers_transitivity;
          Alcotest.test_case "reach refutes" `Quick test_reach_refutes;
        ] );
      ( "provenance",
        [
          Alcotest.test_case "duplicate projection keeps both copies" `Quick
            test_projection_duplicate_attrs;
          Alcotest.test_case "filter preserves order" `Quick
            test_filter_preserves_order;
          Alcotest.test_case "product keeps left order" `Quick
            test_product_keeps_left_order;
          Alcotest.test_case "order_covers on duplicates" `Quick
            test_order_covers_duplicate_projection;
        ] );
      ( "nulls-first",
        [
          Alcotest.test_case "sort places nulls first, stably" `Quick
            test_sort_places_nulls_first;
          Alcotest.test_case "load_sorted rejects nulls last" `Quick
            test_load_sorted_rejects_nulls_last;
          Alcotest.test_case "merge join agrees on null keys" `Quick
            test_merge_join_agrees_on_nulls;
        ] );
    ]
