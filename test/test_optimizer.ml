(* Optimizer tests: the uniqueness rewrites must expand the strategy space
   and the cost model must prefer the cheaper alternatives on the paper's
   examples. *)

let catalog = Workload.Paper_schema.catalog ()

let stats : Optimizer.Cost.table_stats = function
  | "SUPPLIER" -> 1_000
  | "PARTS" -> 10_000
  | "AGENTS" -> 2_000
  | t -> failwith ("no stats for " ^ t)

let parse = Sql.Parser.parse_query

let example1 =
  "SELECT DISTINCT S.SNO, P.PNO, P.PNAME FROM SUPPLIER S, PARTS P WHERE \
   S.SNO = P.SNO AND P.COLOR = 'RED'"

let test_enumerate_expands_space () =
  let strategies = Optimizer.Planner.enumerate catalog stats (parse example1) in
  Alcotest.(check bool) "more than the original" true (List.length strategies > 1);
  Alcotest.(check bool) "original present" true
    (List.exists (fun s -> s.Optimizer.Planner.name = "as-written") strategies)

let test_ablation_baseline () =
  let strategies =
    Optimizer.Planner.enumerate ~with_rewrites:false catalog stats (parse example1)
  in
  Alcotest.(check int) "only the original" 1 (List.length strategies)

let test_distinct_removal_preferred () =
  let best = Optimizer.Planner.choose catalog stats (parse example1) in
  Alcotest.(check bool) "a distinct-removed strategy wins" true
    (match best.Optimizer.Planner.query with
     | Sql.Ast.Spec s -> s.Sql.Ast.distinct = Sql.Ast.All
     | Sql.Ast.Setop _ -> false);
  let baseline =
    Optimizer.Planner.choose ~with_rewrites:false catalog stats (parse example1)
  in
  Alcotest.(check bool) "cheaper than as-written" true
    (best.Optimizer.Planner.estimate.Optimizer.Cost.cost
     < baseline.Optimizer.Planner.estimate.Optimizer.Cost.cost)

let test_subquery_to_join_considered () =
  let q =
    parse
      "SELECT ALL S.SNO, S.SNAME FROM SUPPLIER S WHERE S.SNAME = :N AND \
       EXISTS (SELECT * FROM PARTS P WHERE S.SNO = P.SNO AND P.PNO = :PN)"
  in
  let strategies = Optimizer.Planner.enumerate catalog stats q in
  Alcotest.(check bool) "join strategy offered" true
    (List.exists
       (fun s -> s.Optimizer.Planner.name = "subquery-to-join")
       strategies)

let test_intersect_strategy_considered () =
  let q =
    parse
      "SELECT S.SNO FROM SUPPLIER S INTERSECT SELECT A.SNO FROM AGENTS A"
  in
  let strategies = Optimizer.Planner.enumerate catalog stats q in
  Alcotest.(check bool) "intersect-to-exists offered" true
    (List.exists
       (fun s -> s.Optimizer.Planner.name = "intersect-to-exists")
       strategies)

let test_cost_monotone_in_cardinality () =
  let q = parse "SELECT DISTINCT P.COLOR FROM PARTS P" in
  let small = Optimizer.Cost.query catalog (fun _ -> 100) q in
  let large = Optimizer.Cost.query catalog (fun _ -> 100_000) q in
  Alcotest.(check bool) "bigger input costs more" true
    (large.Optimizer.Cost.cost > small.Optimizer.Cost.cost)

let test_distinct_costs_extra () =
  let qd = parse "SELECT DISTINCT P.COLOR FROM PARTS P" in
  let qa = parse "SELECT ALL P.COLOR FROM PARTS P" in
  let ed = Optimizer.Cost.query catalog stats qd in
  let ea = Optimizer.Cost.query catalog stats qa in
  Alcotest.(check bool) "DISTINCT adds sort cost" true
    (ed.Optimizer.Cost.cost > ea.Optimizer.Cost.cost)

let test_key_equality_selectivity () =
  (* pinning the full key of PARTS gives cardinality about 1 *)
  let q = parse "SELECT P.PNAME FROM PARTS P WHERE P.SNO = 1 AND P.PNO = 2" in
  let e = Optimizer.Cost.query catalog stats q in
  Alcotest.(check bool) "key lookup estimates ~1 row" true
    (e.Optimizer.Cost.card <= 2.0)

(* ---- join-planning primitives ---- *)

let spec_of s =
  match parse s with
  | Sql.Ast.Spec q -> q
  | Sql.Ast.Setop _ -> assert false

let test_restrict_key_pinned () =
  let q =
    spec_of "SELECT P.PNAME FROM PARTS P WHERE P.SNO = 1 AND P.PNO = 2"
  in
  let f = List.hd q.Sql.Ast.from in
  let e = Optimizer.Cost.restrict catalog stats f q.Sql.Ast.where in
  Alcotest.(check bool) "full key pinned: about one row" true
    (e.Optimizer.Cost.card <= 1.0 +. 1e-9);
  Alcotest.(check bool) "cost is the scan" true
    (e.Optimizer.Cost.cost = 10_000.0);
  let q2 = spec_of "SELECT P.PNAME FROM PARTS P WHERE P.COLOR = 'RED'" in
  let e2 = Optimizer.Cost.restrict catalog stats (List.hd q2.Sql.Ast.from) q2.Sql.Ast.where in
  Alcotest.(check bool) "non-key equality keeps 0.1 selectivity" true
    (abs_float (e2.Optimizer.Cost.card -. 1_000.0) < 1e-6)

let test_join_step_estimates () =
  let outer = { Optimizer.Cost.cost = 100.0; card = 100.0 } in
  let inner = { Optimizer.Cost.cost = 50.0; card = 50.0 } in
  let unique =
    Optimizer.Cost.join_step ~outer ~inner ~equis:1 ~unique_build:true
  in
  Alcotest.(check (float 1e-9)) "unique build caps card at the outer side"
    100.0 unique.Optimizer.Cost.card;
  let generic =
    Optimizer.Cost.join_step ~outer ~inner ~equis:1 ~unique_build:false
  in
  Alcotest.(check (float 1e-9)) "generic equality keeps 0.1 per edge" 500.0
    generic.Optimizer.Cost.card;
  let product =
    Optimizer.Cost.join_step ~outer ~inner ~equis:0 ~unique_build:false
  in
  Alcotest.(check (float 1e-9)) "no equality: full product" 5_000.0
    product.Optimizer.Cost.card;
  Alcotest.(check bool) "product pays every pair" true
    (product.Optimizer.Cost.cost > generic.Optimizer.Cost.cost)

let test_join_plan_star () =
  (* DIM1, DIM2, FACT in FROM order: the plan must start at FACT and
     certify both dimension builds unique (K is each dimension's key) *)
  let cat = Workload.Datagen.star_catalog in
  let st : Optimizer.Cost.table_stats = function
    | "FACT" -> 10_000
    | "DIM1" | "DIM2" -> 100
    | t -> failwith ("no stats for " ^ t)
  in
  let c =
    Optimizer.Join_plan.choose ~stats:st cat
      (parse Workload.Datagen.star_query)
  in
  Alcotest.(check string) "cost-ordered" "cost-ordered"
    c.Optimizer.Join_plan.name;
  Alcotest.(check int) "starts at FACT" 2 c.Optimizer.Join_plan.first;
  Alcotest.(check int) "both dimension builds unique" 2
    c.Optimizer.Join_plan.unique_builds;
  Alcotest.(check bool) "cheaper than FROM order" true
    (c.Optimizer.Join_plan.est_cost < c.Optimizer.Join_plan.from_order_cost);
  (* every unique step carries a spec that Algorithm 1 re-certifies *)
  List.iter
    (fun (s : Optimizer.Join_plan.step) ->
      if s.Optimizer.Join_plan.unique_build then
        match s.Optimizer.Join_plan.cert_spec with
        | None -> Alcotest.fail "unique step without a certificate spec"
        | Some spec ->
          Alcotest.(check bool) "certificate re-derives" true
            (Uniqueness.Algorithm1.distinct_is_redundant cat spec))
    c.Optimizer.Join_plan.steps

let test_join_plan_filtered_probe () =
  (* Example 1's join: the filtered PARTS side probes, SUPPLIER (keyed on
     SNO) is the unique build *)
  let c = Optimizer.Join_plan.choose ~stats catalog (parse example1) in
  Alcotest.(check int) "one unique build" 1
    c.Optimizer.Join_plan.unique_builds;
  (match c.Optimizer.Join_plan.steps with
  | [ s ] ->
    Alcotest.(check string) "SUPPLIER is the build side" "S"
      s.Optimizer.Join_plan.leaf_name;
    Alcotest.(check bool) "its build is unique" true
      s.Optimizer.Join_plan.unique_build
  | _ -> Alcotest.fail "expected exactly one join step");
  (* single-table and set-operation queries have nothing to plan *)
  let none =
    Optimizer.Join_plan.choose ~stats catalog
      (parse "SELECT P.PNO FROM PARTS P")
  in
  Alcotest.(check string) "nothing to plan" "none"
    none.Optimizer.Join_plan.name

let test_join_plan_estimates_match_measured () =
  (* On an FK-clean instance, the unique-build step's estimated
     cardinality (outer side) is exact: every PARTS row finds its
     SUPPLIER *)
  let db =
    Workload.Generator.supplier_db ~suppliers:30 ~parts_per_supplier:3 ()
  in
  let cat = Engine.Database.catalog db in
  let q =
    parse "SELECT S.SNO, P.PNO FROM SUPPLIER S, PARTS P WHERE S.SNO = P.SNO"
  in
  let c = Optimizer.Join_plan.choose ~database:db cat q in
  Alcotest.(check int) "SUPPLIER build is unique" 1
    c.Optimizer.Join_plan.unique_builds;
  let est_card =
    match List.rev c.Optimizer.Join_plan.steps with
    | last :: _ -> last.Optimizer.Join_plan.est.Optimizer.Cost.card
    | [] -> nan
  in
  let cfg =
    { (Engine.Exec.default_config ()) with
      Engine.Exec.join_impl = c.Optimizer.Join_plan.impl }
  in
  let r = Engine.Exec.run_query ~config:cfg db ~hosts:[] q in
  Alcotest.(check int) "estimate equals the measured row count"
    (Engine.Relation.cardinality r)
    (int_of_float est_card)

let () =
  Alcotest.run "optimizer"
    [
      ( "planner",
        [
          Alcotest.test_case "rewrites expand the space" `Quick
            test_enumerate_expands_space;
          Alcotest.test_case "ablation baseline" `Quick test_ablation_baseline;
          Alcotest.test_case "distinct removal preferred" `Quick
            test_distinct_removal_preferred;
          Alcotest.test_case "subquery-to-join considered" `Quick
            test_subquery_to_join_considered;
          Alcotest.test_case "intersect strategy considered" `Quick
            test_intersect_strategy_considered;
        ] );
      ( "cost",
        [
          Alcotest.test_case "monotone in cardinality" `Quick
            test_cost_monotone_in_cardinality;
          Alcotest.test_case "DISTINCT costs extra" `Quick
            test_distinct_costs_extra;
          Alcotest.test_case "key equality selectivity" `Quick
            test_key_equality_selectivity;
          Alcotest.test_case "restrict honors key pinning" `Quick
            test_restrict_key_pinned;
          Alcotest.test_case "join_step cardinalities" `Quick
            test_join_step_estimates;
        ] );
      ( "join-plan",
        [
          Alcotest.test_case "star schema: fact first, dims unique" `Quick
            test_join_plan_star;
          Alcotest.test_case "filtered side probes, keyed side builds" `Quick
            test_join_plan_filtered_probe;
          Alcotest.test_case "estimates match measured rows on FK data" `Quick
            test_join_plan_estimates_match_measured;
        ] );
    ]
