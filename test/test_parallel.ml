(* Tests for the work-stealing domain pool and the domain-safe sharded
   cache: map's submission-order determinism, exception capture across
   domains (including tasks that raise after being stolen), pool reuse,
   the jobs = 1 sequential degeneration, steal traffic under skewed chunk
   costs, epoch-merge cache equivalence across jobs levels, and a
   multi-domain stress run on one sharded LRU whose counters must add up
   exactly. *)

module Pool = Parallel.Pool
module S = Cache.Sharded
module L = Cache.Lru

exception Boom of int

(* results arrive in submission order, not completion order: give the
   early items the most work so completion order would be reversed *)
let test_map_submission_order () =
  Pool.with_pool ~jobs:4 @@ fun pool ->
  let n = 200 in
  let inputs = List.init n Fun.id in
  let slow i =
    let spins = (n - i) * 50 in
    let acc = ref 0 in
    for k = 1 to spins do
      acc := (!acc * 7) + k
    done;
    ignore !acc;
    i * i
  in
  Alcotest.(check (list int))
    "map keeps submission order"
    (List.map (fun i -> i * i) inputs)
    (Pool.map pool slow inputs)

let test_map_empty_and_small () =
  Pool.with_pool ~jobs:3 @@ fun pool ->
  Alcotest.(check (list int)) "empty" [] (Pool.map pool (fun x -> x) []);
  Alcotest.(check (list int)) "fewer items than domains" [ 2; 4 ]
    (Pool.map pool (fun x -> 2 * x) [ 1; 2 ])

(* an exception raised inside a worker re-raises on the submitting domain;
   the pool stays usable afterwards *)
let test_exception_propagation () =
  Pool.with_pool ~jobs:4 @@ fun pool ->
  (match Pool.map pool (fun i -> if i = 17 then raise (Boom i) else i)
           (List.init 64 Fun.id)
   with
  | _ -> Alcotest.fail "expected Boom to re-raise"
  | exception Boom 17 -> ());
  Alcotest.(check (list int)) "pool survives a raising batch" [ 1; 2; 3 ]
    (Pool.map pool (fun x -> x) [ 1; 2; 3 ]);
  (* async/await propagate too *)
  let fut = Pool.async pool (fun () -> raise (Boom 3)) in
  (match Pool.await pool fut with
  | _ -> Alcotest.fail "expected Boom from await"
  | exception Boom 3 -> ())

let test_pool_reuse_across_batches () =
  Pool.with_pool ~jobs:4 @@ fun pool ->
  for round = 1 to 5 do
    let xs = List.init 40 (fun i -> (round * 100) + i) in
    Alcotest.(check (list int))
      (Printf.sprintf "round %d" round)
      (List.map succ xs)
      (Pool.map pool succ xs)
  done

(* jobs = 1 spawns nothing: every task runs inline on the calling domain,
   and a future is already resolved when async returns *)
let test_jobs1_degenerates_to_sequential () =
  Pool.with_pool ~jobs:1 @@ fun pool ->
  Alcotest.(check int) "jobs" 1 (Pool.jobs pool);
  let self = Domain.self () in
  let ran_on = ref None in
  let fut = Pool.async pool (fun () -> ran_on := Some (Domain.self ())) in
  Alcotest.(check bool) "async ran inline" true (Pool.ready fut);
  Pool.await pool fut;
  Alcotest.(check bool) "on the calling domain" true (!ran_on = Some self);
  (* side effects happen in list order, like List.map *)
  let order = ref [] in
  ignore
    (Pool.map pool
       (fun i ->
         order := i :: !order;
         i)
       [ 1; 2; 3; 4 ]);
  Alcotest.(check (list int)) "left-to-right effects" [ 1; 2; 3; 4 ]
    (List.rev !order)

let test_create_rejects_zero_jobs () =
  Alcotest.check_raises "jobs = 0"
    (Invalid_argument "Pool.create: jobs must be >= 1") (fun () ->
      ignore (Pool.create ~jobs:0))

(* ---- work stealing ---- *)

let spin n =
  let acc = ref 0 in
  for k = 1 to n do
    acc := (!acc * 7) + k
  done;
  ignore !acc

(* Skewed chunk costs: the first few chunks carry almost all the work, so
   whoever draws them keeps running while everyone else drains their
   deque and steals. Steal timing is scheduler-dependent, so the check
   retries a few rounds — but the result order must hold on every round,
   steals or not. *)
let test_steal_under_skewed_chunks () =
  Pool.with_pool ~jobs:4 @@ fun pool ->
  let n = 512 in
  let inputs = List.init n Fun.id in
  let expected = List.map (fun i -> i * 3) inputs in
  let skewed i =
    spin (if i < 16 then 400_000 else 50);
    i * 3
  in
  let rounds = ref 0 in
  while (Pool.stats pool).Pool.steals = 0 && !rounds < 50 do
    incr rounds;
    Alcotest.(check (list int)) "order preserved under skew" expected
      (Pool.map ~chunks:64 pool skewed inputs)
  done;
  let s = Pool.stats pool in
  Alcotest.(check bool)
    (Printf.sprintf "steals observed (after %d rounds)" !rounds)
    true
    (s.Pool.steals > 0);
  (* steal-half migrates at least one task per successful steal *)
  Alcotest.(check bool) "stolen_tasks >= steals" true
    (s.Pool.stolen_tasks >= s.Pool.steals);
  Alcotest.(check bool) "tasks counted" true (s.Pool.tasks >= 64)

let test_stats_zero_at_jobs1 () =
  Pool.with_pool ~jobs:1 @@ fun pool ->
  ignore (Pool.map pool succ (List.init 100 Fun.id));
  let s = Pool.stats pool in
  Alcotest.(check int) "no steals sequentially" 0 s.Pool.steals;
  Alcotest.(check int) "no migrated tasks" 0 s.Pool.stolen_tasks

(* Regression for the awaiting-helper deadlock: a task that raises —
   possibly after being stolen, which the skew makes likely — must both
   re-raise at the submitter and wake every domain awaiting the batch.
   Before outcome publication and completion accounting became a single
   atomic step, a raise on a stolen task could leave helpers asleep. The
   many rounds make the steal/raise interleaving all but certain to
   occur; a deadlock here hangs the test rather than failing it, which is
   exactly what CI's timeout is for. *)
let test_raise_after_steal_no_deadlock () =
  Pool.with_pool ~jobs:4 @@ fun pool ->
  for round = 1 to 20 do
    (match
       Pool.map ~chunks:32 pool
         (fun i ->
           if i = 100 then raise (Boom i);
           spin (if i < 8 then 100_000 else 10);
           i)
         (List.init 256 Fun.id)
     with
    | _ -> Alcotest.fail "expected Boom to re-raise"
    | exception Boom 100 -> ());
    (* no helper may be left awaiting the failed batch *)
    Alcotest.(check (list int))
      (Printf.sprintf "pool fully usable after raise, round %d" round)
      [ 2; 4; 6 ]
      (Pool.map pool (fun x -> 2 * x) [ 1; 2; 3 ])
  done

(* ---- epoch-merge cache equivalence ---- *)

let catalog = Workload.Paper_schema.catalog ()

let epoch_base_queries =
  [ "SELECT DISTINCT S.SNO FROM SUPPLIER S WHERE S.SNO = 's1'";
    "SELECT DISTINCT S.SNO, P.PNO, P.PNAME FROM SUPPLIER S, PARTS P \
     WHERE S.SNO = P.SNO AND P.COLOR = 'RED'";
    "SELECT DISTINCT P.PNO, P.COLOR FROM PARTS P WHERE P.PNO = 'p3'";
    "SELECT DISTINCT P.OEM_PNO FROM PARTS P WHERE P.OEM_PNO = 7";
    "SELECT DISTINCT S.SNAME FROM SUPPLIER S" ]

(* Run a workload through the verdict cache + closure memo in two epochs
   (cold then warm) and report everything observable: verdicts in order,
   verdict counters, closure-memo counter deltas, entry count. *)
let run_epoch_workload ~jobs epoch_workload =
  Cache.Mode.with_parallel (jobs > 1) @@ fun () ->
  Cache.Runtime.with_enabled true @@ fun () ->
  Cache.Runtime.clear ();
  let memo0 = Cache.Runtime.counters () in
  let cache = Analysis_cache.create ~shards:8 () in
  Pool.with_pool ~jobs @@ fun pool ->
  let one_epoch () =
    Analysis_cache.epoch cache (fun () ->
        Pool.map pool
          (fun sql ->
            match Sql.Parser.parse_query sql with
            | Sql.Ast.Spec s ->
              let a =
                Uniqueness.Algorithm1.distinct_is_redundant ~cache catalog s
              in
              let f =
                Uniqueness.Fd_analysis.distinct_is_redundant ~cache catalog s
              in
              (a, f)
            | _ -> Alcotest.fail "workload must be plain specs")
          epoch_workload)
  in
  let cold = one_epoch () in
  let warm = one_epoch () in
  let v = Analysis_cache.counters cache in
  let m = Cache.Runtime.counters () in
  ( cold,
    warm,
    (v.L.c_hits, v.L.c_misses, Analysis_cache.length cache),
    (m.L.c_hits - memo0.L.c_hits, m.L.c_misses - memo0.L.c_misses) )

(* merged hit-counts at jobs = 4 must equal the sequential hit-counts at
   jobs = 1 on the same workload — the epoch merge's defining property.
   The workload repeats every query 8 times inside each epoch: verdict
   accounting (one lookup per request, hit iff the key was in the frozen
   shared table) is scheduling-independent even then. *)
let test_epoch_merge_counter_equivalence () =
  let workload =
    List.concat_map
      (fun sql -> List.init 8 (fun _ -> sql))
      epoch_base_queries
  in
  let cold1, warm1, verdicts1, _ = run_epoch_workload ~jobs:1 workload in
  let cold4, warm4, verdicts4, _ = run_epoch_workload ~jobs:4 workload in
  let verdict_list = Alcotest.(list (pair bool bool)) in
  Alcotest.check verdict_list "cold verdicts identical" cold1 cold4;
  Alcotest.check verdict_list "warm verdicts identical" warm1 warm4;
  Alcotest.(check (triple int int int))
    "verdict hits/misses/entries identical" verdicts1 verdicts4;
  (* and the warm epoch must actually have hit: every verdict the cold
     epoch stored is shared (and frozen) by the time the warm one runs *)
  let hits, _, entries = verdicts1 in
  Alcotest.(check bool) "warm epoch produced hits" true (hits >= entries);
  Alcotest.(check bool) "cold epoch stored entries" true (entries > 0)

(* With each query appearing once per epoch — the shape of a real batch
   file — the closure-memo counters are deterministic too: every analysis
   runs exactly once per cold epoch, so memo traffic cannot depend on
   which domain ran it. (With intra-epoch duplicates only the verdict
   counters are guaranteed; a duplicate landing on two domains is
   analyzed by both before the merge dedups the entries.) *)
let test_epoch_closure_memo_equivalence () =
  let cold1, warm1, verdicts1, memo1 =
    run_epoch_workload ~jobs:1 epoch_base_queries
  in
  let cold4, warm4, verdicts4, memo4 =
    run_epoch_workload ~jobs:4 epoch_base_queries
  in
  let verdict_list = Alcotest.(list (pair bool bool)) in
  Alcotest.check verdict_list "cold verdicts identical" cold1 cold4;
  Alcotest.check verdict_list "warm verdicts identical" warm1 warm4;
  Alcotest.(check (triple int int int))
    "verdict hits/misses/entries identical" verdicts1 verdicts4;
  Alcotest.(check (pair int int)) "closure-memo hit/miss deltas identical"
    memo1 memo4

(* ---- sharded LRU under concurrency ---- *)

(* four domains hammer one sharded table; afterwards, with the dust
   settled, hits + misses over the shards must equal the number of finds
   issued, and every key must be present with its correct value *)
let test_sharded_stress_counters () =
  let keys_per_domain = 2_000 in
  let domains = 4 in
  let t : (int, int) S.t = S.create ~shards:8 ~capacity:100_000 () in
  Cache.Mode.with_parallel true @@ fun () ->
  Pool.with_pool ~jobs:domains @@ fun pool ->
  let worker d =
    (* overlapping key ranges: half shared with the neighbour *)
    let base = d * keys_per_domain / 2 in
    let found = ref 0 in
    for k = base to base + keys_per_domain - 1 do
      (match S.find t k with
      | Some v -> if v <> 2 * k then Alcotest.fail "wrong value under race"
      | None -> S.add t k (2 * k));
      (match S.find t k with
      | Some v ->
        incr found;
        if v <> 2 * k then Alcotest.fail "wrong value under race"
      | None -> Alcotest.fail "just-added key missing")
    done;
    !found
  in
  let found = Pool.map pool worker (List.init domains Fun.id) in
  Alcotest.(check int) "second find always hits"
    (domains * keys_per_domain)
    (List.fold_left ( + ) 0 found);
  let agg = S.counters t in
  Alcotest.(check int) "hits + misses = finds issued"
    (2 * domains * keys_per_domain)
    (agg.L.c_hits + agg.L.c_misses);
  Alcotest.(check int) "no evictions at this capacity" 0 agg.L.c_evictions;
  (* per-shard counters sum to the aggregate *)
  let per = S.shard_counters t in
  let sum f = Array.fold_left (fun acc s -> acc + f s) 0 per in
  Alcotest.(check int) "shard hits sum" agg.L.c_hits
    (sum (fun s -> s.S.s_counters.L.c_hits));
  Alcotest.(check int) "shard misses sum" agg.L.c_misses
    (sum (fun s -> s.S.s_counters.L.c_misses));
  Alcotest.(check int) "contention sums" (S.contention t)
    (sum (fun s -> s.S.s_contention));
  (* every key that was added is still there with its value *)
  let all_keys = (domains - 1) * keys_per_domain / 2 + keys_per_domain in
  Alcotest.(check int) "entry count" all_keys (S.length t);
  for k = 0 to all_keys - 1 do
    match S.find t k with
    | Some v when v = 2 * k -> ()
    | Some _ -> Alcotest.fail "corrupted value after stress"
    | None -> Alcotest.fail (Printf.sprintf "key %d lost after stress" k)
  done

(* the interner allocates dense, stable ids when four domains intern
   overlapping attribute sets concurrently *)
let test_interner_stress () =
  let attrs_per_domain = 500 in
  let domains = 4 in
  Cache.Mode.with_parallel true @@ fun () ->
  Pool.with_pool ~jobs:domains @@ fun pool ->
  let worker d =
    let base = d * attrs_per_domain / 2 in
    List.init attrs_per_domain (fun i ->
        let a =
          Schema.Attr.of_string (Printf.sprintf "STRESS.C%d" (base + i))
        in
        let id = Cache.Interner.id a in
        if not (Schema.Attr.equal (Cache.Interner.attr id) a) then
          Alcotest.fail "interned id resolves to the wrong attribute";
        (a, id))
  in
  let pairs = List.concat (Pool.map pool worker (List.init domains Fun.id)) in
  (* same attribute always got the same id, across all domains *)
  let tbl = Hashtbl.create 256 in
  List.iter
    (fun (a, id) ->
      let key = Schema.Attr.to_string a in
      match Hashtbl.find_opt tbl key with
      | None -> Hashtbl.add tbl key id
      | Some id' ->
        if id <> id' then
          Alcotest.fail (Printf.sprintf "%s interned twice: %d and %d" key id id'))
    pairs

let () =
  Alcotest.run "parallel"
    [ ( "pool",
        [ Alcotest.test_case "map keeps submission order" `Quick
            test_map_submission_order;
          Alcotest.test_case "empty and small inputs" `Quick
            test_map_empty_and_small;
          Alcotest.test_case "worker exception re-raises at the submitter"
            `Quick test_exception_propagation;
          Alcotest.test_case "reusable across batches" `Quick
            test_pool_reuse_across_batches;
          Alcotest.test_case "jobs=1 is the sequential path" `Quick
            test_jobs1_degenerates_to_sequential;
          Alcotest.test_case "rejects jobs < 1" `Quick
            test_create_rejects_zero_jobs ] );
      ( "stealing",
        [ Alcotest.test_case "steals under skewed chunk costs" `Quick
            test_steal_under_skewed_chunks;
          Alcotest.test_case "stats are zero at jobs=1" `Quick
            test_stats_zero_at_jobs1;
          Alcotest.test_case "raise after steal: no helper deadlock" `Quick
            test_raise_after_steal_no_deadlock ] );
      ( "epoch",
        [ Alcotest.test_case "merged counters = sequential counters" `Quick
            test_epoch_merge_counter_equivalence;
          Alcotest.test_case "closure memo deterministic per-epoch-unique"
            `Quick test_epoch_closure_memo_equivalence ] );
      ( "sharded",
        [ Alcotest.test_case "4-domain LRU stress, counters add up" `Quick
            test_sharded_stress_counters;
          Alcotest.test_case "4-domain interner stress" `Quick
            test_interner_stress ] ) ]
