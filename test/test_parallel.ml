(* Tests for the domain pool and the domain-safe sharded cache: map's
   submission-order determinism, exception capture across domains, pool
   reuse, the jobs = 1 sequential degeneration, and a multi-domain stress
   run on one sharded LRU whose counters must add up exactly. *)

module Pool = Parallel.Pool
module S = Cache.Sharded
module L = Cache.Lru

exception Boom of int

(* results arrive in submission order, not completion order: give the
   early items the most work so completion order would be reversed *)
let test_map_submission_order () =
  Pool.with_pool ~jobs:4 @@ fun pool ->
  let n = 200 in
  let inputs = List.init n Fun.id in
  let slow i =
    let spins = (n - i) * 50 in
    let acc = ref 0 in
    for k = 1 to spins do
      acc := (!acc * 7) + k
    done;
    ignore !acc;
    i * i
  in
  Alcotest.(check (list int))
    "map keeps submission order"
    (List.map (fun i -> i * i) inputs)
    (Pool.map pool slow inputs)

let test_map_empty_and_small () =
  Pool.with_pool ~jobs:3 @@ fun pool ->
  Alcotest.(check (list int)) "empty" [] (Pool.map pool (fun x -> x) []);
  Alcotest.(check (list int)) "fewer items than domains" [ 2; 4 ]
    (Pool.map pool (fun x -> 2 * x) [ 1; 2 ])

(* an exception raised inside a worker re-raises on the submitting domain;
   the pool stays usable afterwards *)
let test_exception_propagation () =
  Pool.with_pool ~jobs:4 @@ fun pool ->
  (match Pool.map pool (fun i -> if i = 17 then raise (Boom i) else i)
           (List.init 64 Fun.id)
   with
  | _ -> Alcotest.fail "expected Boom to re-raise"
  | exception Boom 17 -> ());
  Alcotest.(check (list int)) "pool survives a raising batch" [ 1; 2; 3 ]
    (Pool.map pool (fun x -> x) [ 1; 2; 3 ]);
  (* async/await propagate too *)
  let fut = Pool.async pool (fun () -> raise (Boom 3)) in
  (match Pool.await pool fut with
  | _ -> Alcotest.fail "expected Boom from await"
  | exception Boom 3 -> ())

let test_pool_reuse_across_batches () =
  Pool.with_pool ~jobs:4 @@ fun pool ->
  for round = 1 to 5 do
    let xs = List.init 40 (fun i -> (round * 100) + i) in
    Alcotest.(check (list int))
      (Printf.sprintf "round %d" round)
      (List.map succ xs)
      (Pool.map pool succ xs)
  done

(* jobs = 1 spawns nothing: every task runs inline on the calling domain,
   and a future is already resolved when async returns *)
let test_jobs1_degenerates_to_sequential () =
  Pool.with_pool ~jobs:1 @@ fun pool ->
  Alcotest.(check int) "jobs" 1 (Pool.jobs pool);
  let self = Domain.self () in
  let ran_on = ref None in
  let fut = Pool.async pool (fun () -> ran_on := Some (Domain.self ())) in
  Alcotest.(check bool) "async ran inline" true (Pool.ready fut);
  Pool.await pool fut;
  Alcotest.(check bool) "on the calling domain" true (!ran_on = Some self);
  (* side effects happen in list order, like List.map *)
  let order = ref [] in
  ignore
    (Pool.map pool
       (fun i ->
         order := i :: !order;
         i)
       [ 1; 2; 3; 4 ]);
  Alcotest.(check (list int)) "left-to-right effects" [ 1; 2; 3; 4 ]
    (List.rev !order)

let test_create_rejects_zero_jobs () =
  Alcotest.check_raises "jobs = 0"
    (Invalid_argument "Pool.create: jobs must be >= 1") (fun () ->
      ignore (Pool.create ~jobs:0))

(* ---- sharded LRU under concurrency ---- *)

(* four domains hammer one sharded table; afterwards, with the dust
   settled, hits + misses over the shards must equal the number of finds
   issued, and every key must be present with its correct value *)
let test_sharded_stress_counters () =
  let keys_per_domain = 2_000 in
  let domains = 4 in
  let t : (int, int) S.t = S.create ~shards:8 ~capacity:100_000 () in
  Cache.Mode.with_parallel true @@ fun () ->
  Pool.with_pool ~jobs:domains @@ fun pool ->
  let worker d =
    (* overlapping key ranges: half shared with the neighbour *)
    let base = d * keys_per_domain / 2 in
    let found = ref 0 in
    for k = base to base + keys_per_domain - 1 do
      (match S.find t k with
      | Some v -> if v <> 2 * k then Alcotest.fail "wrong value under race"
      | None -> S.add t k (2 * k));
      (match S.find t k with
      | Some v ->
        incr found;
        if v <> 2 * k then Alcotest.fail "wrong value under race"
      | None -> Alcotest.fail "just-added key missing")
    done;
    !found
  in
  let found = Pool.map pool worker (List.init domains Fun.id) in
  Alcotest.(check int) "second find always hits"
    (domains * keys_per_domain)
    (List.fold_left ( + ) 0 found);
  let agg = S.counters t in
  Alcotest.(check int) "hits + misses = finds issued"
    (2 * domains * keys_per_domain)
    (agg.L.c_hits + agg.L.c_misses);
  Alcotest.(check int) "no evictions at this capacity" 0 agg.L.c_evictions;
  (* per-shard counters sum to the aggregate *)
  let per = S.shard_counters t in
  let sum f = Array.fold_left (fun acc s -> acc + f s) 0 per in
  Alcotest.(check int) "shard hits sum" agg.L.c_hits
    (sum (fun s -> s.S.s_counters.L.c_hits));
  Alcotest.(check int) "shard misses sum" agg.L.c_misses
    (sum (fun s -> s.S.s_counters.L.c_misses));
  Alcotest.(check int) "contention sums" (S.contention t)
    (sum (fun s -> s.S.s_contention));
  (* every key that was added is still there with its value *)
  let all_keys = (domains - 1) * keys_per_domain / 2 + keys_per_domain in
  Alcotest.(check int) "entry count" all_keys (S.length t);
  for k = 0 to all_keys - 1 do
    match S.find t k with
    | Some v when v = 2 * k -> ()
    | Some _ -> Alcotest.fail "corrupted value after stress"
    | None -> Alcotest.fail (Printf.sprintf "key %d lost after stress" k)
  done

(* the interner allocates dense, stable ids when four domains intern
   overlapping attribute sets concurrently *)
let test_interner_stress () =
  let attrs_per_domain = 500 in
  let domains = 4 in
  Cache.Mode.with_parallel true @@ fun () ->
  Pool.with_pool ~jobs:domains @@ fun pool ->
  let worker d =
    let base = d * attrs_per_domain / 2 in
    List.init attrs_per_domain (fun i ->
        let a =
          Schema.Attr.of_string (Printf.sprintf "STRESS.C%d" (base + i))
        in
        let id = Cache.Interner.id a in
        if not (Schema.Attr.equal (Cache.Interner.attr id) a) then
          Alcotest.fail "interned id resolves to the wrong attribute";
        (a, id))
  in
  let pairs = List.concat (Pool.map pool worker (List.init domains Fun.id)) in
  (* same attribute always got the same id, across all domains *)
  let tbl = Hashtbl.create 256 in
  List.iter
    (fun (a, id) ->
      let key = Schema.Attr.to_string a in
      match Hashtbl.find_opt tbl key with
      | None -> Hashtbl.add tbl key id
      | Some id' ->
        if id <> id' then
          Alcotest.fail (Printf.sprintf "%s interned twice: %d and %d" key id id'))
    pairs

let () =
  Alcotest.run "parallel"
    [ ( "pool",
        [ Alcotest.test_case "map keeps submission order" `Quick
            test_map_submission_order;
          Alcotest.test_case "empty and small inputs" `Quick
            test_map_empty_and_small;
          Alcotest.test_case "worker exception re-raises at the submitter"
            `Quick test_exception_propagation;
          Alcotest.test_case "reusable across batches" `Quick
            test_pool_reuse_across_batches;
          Alcotest.test_case "jobs=1 is the sequential path" `Quick
            test_jobs1_degenerates_to_sequential;
          Alcotest.test_case "rejects jobs < 1" `Quick
            test_create_rejects_zero_jobs ] );
      ( "sharded",
        [ Alcotest.test_case "4-domain LRU stress, counters add up" `Quick
            test_sharded_stress_counters;
          Alcotest.test_case "4-domain interner stress" `Quick
            test_interner_stress ] ) ]
