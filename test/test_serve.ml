(* End-to-end tests of the socket serve front end: a real server runs in
   its own domain, a real client connects over a Unix socket, and the
   framed line protocol is exercised the way an operator's tooling would
   — pipelined requests, byte-identical replies across --jobs levels,
   deterministic `overloaded` admission rejection, the `stats` command,
   and the draining shutdown handshake. *)

module Server = Serve.Server
module Reply = Serve.Reply

let catalog = Workload.Paper_schema.catalog ()

let socket_path tag =
  Filename.concat
    (Filename.get_temp_dir_name ())
    (Printf.sprintf "uniqsql_test_%d_%s.sock" (Unix.getpid ()) tag)

(* ---- a tiny blocking client ---- *)

let connect path =
  (* the server binds asynchronously in its own domain; retry briefly *)
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let deadline = Unix.gettimeofday () +. 5.0 in
  let rec go () =
    match Unix.connect fd (Unix.ADDR_UNIX path) with
    | () -> fd
    | exception Unix.Unix_error ((Unix.ENOENT | Unix.ECONNREFUSED), _, _)
      when Unix.gettimeofday () < deadline ->
      Unix.sleepf 0.02;
      go ()
  in
  go ()

let write_all fd s =
  let n = String.length s in
  let rec go off =
    if off < n then go (off + Unix.write_substring fd s off (n - off))
  in
  go 0

(* One write: on a fresh AF_UNIX stream the whole burst reaches the
   server's next read as a single chunk, which is what makes the
   admission test deterministic. *)
let send_lines fd lines = write_all fd (String.concat "\n" lines ^ "\n")

(* Read reply blocks — each terminated by a "." line — until [n] blocks
   have arrived or the peer closes. Returns the blocks in arrival order,
   each with its terminator stripped. *)
let read_blocks fd n =
  let buf = Buffer.create 1024 in
  let chunk = Bytes.create 4096 in
  let count_terminators s =
    String.split_on_char '\n' s
    |> List.filter (fun l -> l = ".")
    |> List.length
  in
  let rec fill () =
    if count_terminators (Buffer.contents buf) < n then
      match Unix.read fd chunk 0 4096 with
      | 0 -> ()
      | got ->
        Buffer.add_subbytes buf chunk 0 got;
        fill ()
  in
  fill ();
  let rec split acc cur = function
    | [] -> List.rev acc
    | "." :: rest -> split (String.concat "\n" (List.rev cur) :: acc) [] rest
    | l :: rest -> split acc (l :: cur) rest
  in
  (* drop the trailing "" from the final newline *)
  let lines =
    match List.rev (String.split_on_char '\n' (Buffer.contents buf)) with
    | "" :: rest -> List.rev rest
    | all -> List.rev all
  in
  split [] [] lines

(* ---- server lifecycle ---- *)

let with_server ?(jobs = 2) ?(max_inflight = 1024) ?(max_batch = 64)
    ?(test_delay_s = 0.) tag k =
  let path = socket_path tag in
  let cfg =
    {
      (Server.default_config ()) with
      Server.socket_path = Some path;
      use_stdin = false;
      jobs;
      max_inflight;
      max_batch;
      test_delay_s;
    }
  in
  let cache = Analysis_cache.create ~shards:8 () in
  let dom =
    Domain.spawn (fun () ->
        Cache.Mode.with_parallel (jobs > 1) @@ fun () ->
        Cache.Runtime.with_enabled true @@ fun () ->
        Server.run cfg catalog cache)
  in
  Fun.protect
    ~finally:(fun () ->
      Atomic.set cfg.Server.stop true;
      Domain.join dom;
      try Unix.unlink path with Unix.Unix_error _ -> ())
    (fun () -> k path)

let queries =
  [ "SELECT DISTINCT S.SNO FROM SUPPLIER S WHERE S.SNO = 's1'";
    "SELECT DISTINCT S.SNO, P.PNO FROM SUPPLIER S, PARTS P WHERE S.SNO = \
     P.SNO";
    "SELECT S.SNO FROM SUPPLIER S UNION SELECT P.SNO FROM PARTS P";
    "THIS IS NOT SQL";
    "SELECT DISTINCT S.SNO FROM SUPPLIER S WHERE S.SNO = 's1'" ]

(* what the reply to query [i] (1-based label) must say, computed through
   the same pure payload the server uses *)
let expected_replies () =
  let cache = Analysis_cache.create () in
  List.mapi
    (fun i sql ->
      let text, _cls =
        Reply.process cache catalog ~label:(Printf.sprintf "[%d]" (i + 1)) sql
      in
      (* framed blocks carry the text without its trailing newline *)
      String.sub text 0 (String.length text - 1))
    queries

let test_pipelined_replies () =
  with_server "pipe" @@ fun path ->
  let fd = connect path in
  send_lines fd queries;
  let blocks = read_blocks fd (List.length queries) in
  Unix.close fd;
  Alcotest.(check (list string))
    "framed replies in request order, matching the batch payload"
    (expected_replies ()) blocks

(* replies must be byte-identical whatever --jobs the server runs *)
let test_byte_identical_across_jobs () =
  let transcript jobs tag =
    with_server ~jobs tag @@ fun path ->
    let fd = connect path in
    send_lines fd queries;
    let blocks = read_blocks fd (List.length queries) in
    Unix.close fd;
    blocks
  in
  Alcotest.(check (list string))
    "jobs=1 and jobs=2 reply streams identical" (transcript 1 "j1")
    (transcript 2 "j2")

(* admission control: a burst written in one chunk against a stalled
   single-request dispatcher admits exactly max_inflight requests and
   fast-rejects the rest *)
let test_overloaded_rejection_and_stats () =
  with_server ~jobs:1 ~max_inflight:2 ~max_batch:1 ~test_delay_s:0.05
    "admit"
  @@ fun path ->
  let fd = connect path in
  let burst = List.init 6 (fun _ -> List.nth queries 0) in
  send_lines fd burst;
  let blocks = read_blocks fd 6 in
  let overloaded, analyzed =
    List.partition (String.ends_with ~suffix:" overloaded") blocks
  in
  Alcotest.(check int) "exactly max_inflight admitted" 2
    (List.length analyzed);
  Alcotest.(check int) "the rest rejected fast" 4 (List.length overloaded);
  List.iter
    (fun b ->
      Alcotest.(check bool) "admitted replies carry verdicts" true
        (String.length b > 0
        && String.index_opt b '=' <> None))
    analyzed;
  (* stats drains first, then reports: everything above is accounted *)
  send_lines fd [ "stats" ];
  (match read_blocks fd 1 with
  | [ stats ] ->
    let has s sub =
      let n = String.length sub in
      let rec go i =
        i + n <= String.length s && (String.sub s i n = sub || go (i + 1))
      in
      go 0
    in
    Alcotest.(check bool) "serve counters present" true
      (has stats "served=2 rejected=4");
    Alcotest.(check bool) "pool line present" true (has stats "pool: tasks=");
    Alcotest.(check bool) "cache line present" true
      (has stats "cache: verdict_hits=");
    Alcotest.(check bool) "latency section present" true
      (has stats "latency")
  | blocks ->
    Alcotest.fail
      (Printf.sprintf "expected one stats block, got %d" (List.length blocks)));
  (* graceful shutdown: the server acknowledges, drains, and closes *)
  send_lines fd [ "shutdown" ];
  (match read_blocks fd 1 with
  | [ d ] -> Alcotest.(check string) "drain acknowledged" "draining" d
  | _ -> Alcotest.fail "expected a draining block");
  let eof = Bytes.create 1 in
  Alcotest.(check int) "connection closed after drain" 0
    (Unix.read fd eof 0 1);
  Unix.close fd

let () =
  Alcotest.run "serve"
    [ ( "protocol",
        [ Alcotest.test_case "pipelined framed replies" `Quick
            test_pipelined_replies;
          Alcotest.test_case "byte-identical across jobs" `Quick
            test_byte_identical_across_jobs;
          Alcotest.test_case "overloaded + stats + shutdown" `Quick
            test_overloaded_rejection_and_stats ] ) ]
