(* Tests for values and three-valued logic, including the operator semantics
   of paper Table 2. *)

module Truth = Sqlval.Truth
module Value = Sqlval.Value

let truth = Alcotest.testable Truth.pp Truth.equal

let all_truths = [ Truth.True; Truth.False; Truth.Unknown ]

(* ---- Kleene connectives: full truth tables ---- *)

let test_not () =
  Alcotest.check truth "not true" Truth.False (Truth.not_ Truth.True);
  Alcotest.check truth "not false" Truth.True (Truth.not_ Truth.False);
  Alcotest.check truth "not unknown" Truth.Unknown (Truth.not_ Truth.Unknown)

let test_and_table () =
  let expect a b =
    match a, b with
    | Truth.False, _ | _, Truth.False -> Truth.False
    | Truth.True, Truth.True -> Truth.True
    | _ -> Truth.Unknown
  in
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          Alcotest.check truth
            (Printf.sprintf "%s AND %s" (Truth.to_string a) (Truth.to_string b))
            (expect a b) (Truth.and_ a b))
        all_truths)
    all_truths

let test_or_table () =
  let expect a b =
    match a, b with
    | Truth.True, _ | _, Truth.True -> Truth.True
    | Truth.False, Truth.False -> Truth.False
    | _ -> Truth.Unknown
  in
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          Alcotest.check truth
            (Printf.sprintf "%s OR %s" (Truth.to_string a) (Truth.to_string b))
            (expect a b) (Truth.or_ a b))
        all_truths)
    all_truths

(* ---- Table 2: interpretation operators ---- *)

let test_interpretations () =
  (* ⌊P⌋: x IS NOT NULL AND P(x) — holds only when definitely true *)
  Alcotest.(check bool) "⌊true⌋" true (Truth.is_true Truth.True);
  Alcotest.(check bool) "⌊unknown⌋" false (Truth.is_true Truth.Unknown);
  Alcotest.(check bool) "⌊false⌋" false (Truth.is_true Truth.False);
  (* ⌈P⌉: x IS NULL OR P(x) — holds unless definitely false *)
  Alcotest.(check bool) "⌈true⌉" true (Truth.is_not_false Truth.True);
  Alcotest.(check bool) "⌈unknown⌉" true (Truth.is_not_false Truth.Unknown);
  Alcotest.(check bool) "⌈false⌉" false (Truth.is_not_false Truth.False)

(* ---- Table 2: X ≐ Y (null comparison) vs WHERE-clause equality ---- *)

let test_null_comparison () =
  Alcotest.(check bool) "NULL ≐ NULL" true (Value.equal_null Value.Null Value.Null);
  Alcotest.(check bool) "NULL ≐ 1" false (Value.equal_null Value.Null (Value.Int 1));
  Alcotest.(check bool) "1 ≐ 1" true (Value.equal_null (Value.Int 1) (Value.Int 1));
  (* WHERE-clause: NULL = NULL is unknown *)
  Alcotest.check truth "NULL = NULL (3VL)" Truth.Unknown
    (Value.eq3 Value.Null Value.Null);
  Alcotest.check truth "NULL = 1 (3VL)" Truth.Unknown
    (Value.eq3 Value.Null (Value.Int 1));
  Alcotest.check truth "1 = 1 (3VL)" Truth.True
    (Value.eq3 (Value.Int 1) (Value.Int 1));
  Alcotest.check truth "1 <> 2 (3VL)" Truth.True
    (Value.ne3 (Value.Int 1) (Value.Int 2))

let test_comparisons () =
  Alcotest.check truth "1 < 2" Truth.True (Value.lt3 (Value.Int 1) (Value.Int 2));
  Alcotest.check truth "2 <= 2" Truth.True (Value.le3 (Value.Int 2) (Value.Int 2));
  Alcotest.check truth "3 > 2" Truth.True (Value.gt3 (Value.Int 3) (Value.Int 2));
  Alcotest.check truth "2 >= 3" Truth.False (Value.ge3 (Value.Int 2) (Value.Int 3));
  Alcotest.check truth "NULL < 2" Truth.Unknown (Value.lt3 Value.Null (Value.Int 2));
  Alcotest.check truth "int vs float" Truth.True
    (Value.eq3 (Value.Int 2) (Value.Float 2.0));
  Alcotest.check truth "'a' < 'b'" Truth.True
    (Value.lt3 (Value.String "a") (Value.String "b"))

let test_compare_total () =
  Alcotest.(check int) "null = null" 0 (Value.compare_total Value.Null Value.Null);
  Alcotest.(check bool) "null sorts first" true
    (Value.compare_total Value.Null (Value.Int 0) < 0);
  Alcotest.(check int) "2 = 2.0 numeric" 0
    (Value.compare_total (Value.Int 2) (Value.Float 2.0));
  Alcotest.(check bool) "antisym" true
    (Value.compare_total (Value.Int 1) (Value.Int 2)
     = -Value.compare_total (Value.Int 2) (Value.Int 1))

let test_to_string () =
  Alcotest.(check string) "null" "NULL" (Value.to_string Value.Null);
  Alcotest.(check string) "string quoting" "'O''Brien'"
    (Value.to_string (Value.String "O'Brien"));
  Alcotest.(check string) "int" "42" (Value.to_string (Value.Int 42))

(* ---- Logic modes: SQL 3VL vs Libkin 2VL ---- *)

module Logic_mode = Sqlval.Logic_mode
module A = Sql.Ast
module G = Testsupport.Gen_sql

(* Predicates over host variables only, so a binding is just an assoc
   list — enough for exhaustive atom-level truth tables. *)
let eval_hosts ?logic hosts p =
  Logic.Eval.eval_pred_simple ?logic
    ~lookup_col:(fun a -> failwith ("unbound column " ^ Schema.Attr.to_string a))
    ~lookup_host:(fun h -> List.assoc h hosts)
    p

let test_logic_mode_of_string () =
  let mode = Alcotest.testable
      (fun ppf m -> Format.pp_print_string ppf (Logic_mode.to_string m))
      Logic_mode.equal
  in
  Alcotest.(check (option mode)) "3vl" (Some Logic_mode.L3)
    (Logic_mode.of_string "3vl");
  Alcotest.(check (option mode)) "2VL (case)" (Some Logic_mode.L2)
    (Logic_mode.of_string "2VL");
  Alcotest.(check (option mode)) "bare 2" (Some Logic_mode.L2)
    (Logic_mode.of_string "2");
  Alcotest.(check (option mode)) "bare 3" (Some Logic_mode.L3)
    (Logic_mode.of_string "3");
  Alcotest.(check (option mode)) "garbage" None (Logic_mode.of_string "4vl");
  Alcotest.check truth "collapse L3 keeps unknown" Truth.Unknown
    (Logic_mode.collapse Logic_mode.L3 Truth.Unknown);
  Alcotest.check truth "collapse L2 drops unknown" Truth.False
    (Logic_mode.collapse Logic_mode.L2 Truth.Unknown)

(* x = y over the vocabulary {NULL, 1, 2}: a null operand is Unknown in
   3VL and plain False in 2VL; on non-null operands the logics agree. *)
let test_eq_two_logics () =
  let vocab = [ Value.Null; Value.Int 1; Value.Int 2 ] in
  let p = A.Cmp (A.Eq, A.Host "X", A.Host "Y") in
  List.iter
    (fun x ->
      List.iter
        (fun y ->
          let hosts = [ ("X", x); ("Y", y) ] in
          let name l =
            Printf.sprintf "%s = %s (%s)" (Value.to_string x)
              (Value.to_string y) l
          in
          let expect3 =
            if Value.is_null x || Value.is_null y then Truth.Unknown
            else Truth.of_bool (Value.equal_null x y)
          in
          let expect2 =
            if Value.is_null x || Value.is_null y then Truth.False
            else expect3
          in
          Alcotest.check truth (name "3vl") expect3
            (eval_hosts ~logic:Logic_mode.L3 hosts p);
          Alcotest.check truth (name "2vl") expect2
            (eval_hosts ~logic:Logic_mode.L2 hosts p))
        vocab)
    vocab

(* The signature divergence: NOT over a collapsed atom. NOT (x = NULL)
   is Unknown-hence-rejected in 3VL but True in 2VL. *)
let test_not_two_logics () =
  let p = A.Not (A.Cmp (A.Eq, A.Host "X", A.Const Value.Null)) in
  Alcotest.check truth "3VL: NOT (1 = NULL)" Truth.Unknown
    (eval_hosts ~logic:Logic_mode.L3 [ ("X", Value.Int 1) ] p);
  Alcotest.check truth "2VL: NOT (1 = NULL)" Truth.True
    (eval_hosts ~logic:Logic_mode.L2 [ ("X", Value.Int 1) ] p);
  (* null-free: the logics coincide *)
  let q = A.Not (A.Cmp (A.Eq, A.Host "X", A.Const (Value.Int 2))) in
  List.iter
    (fun x ->
      let hosts = [ ("X", Value.Int x) ] in
      Alcotest.check truth
        (Printf.sprintf "NOT (%d = 2): logics agree" x)
        (eval_hosts ~logic:Logic_mode.L3 hosts q)
        (eval_hosts ~logic:Logic_mode.L2 hosts q))
    [ 1; 2 ]

(* IN is a disjunction of equality atoms; each atom collapses
   independently under 2VL (Libkin), so x IN (1, NULL) is False — not
   Unknown — when x misses every non-null member. *)
let test_in_two_logics () =
  let p = A.In_list (A.Host "X", [ Value.Int 1; Value.Null ]) in
  let eval logic x = eval_hosts ~logic [ ("X", x) ] p in
  Alcotest.check truth "1 IN (1, NULL): 3vl" Truth.True
    (eval Logic_mode.L3 (Value.Int 1));
  Alcotest.check truth "1 IN (1, NULL): 2vl" Truth.True
    (eval Logic_mode.L2 (Value.Int 1));
  Alcotest.check truth "2 IN (1, NULL): 3vl" Truth.Unknown
    (eval Logic_mode.L3 (Value.Int 2));
  Alcotest.check truth "2 IN (1, NULL): 2vl" Truth.False
    (eval Logic_mode.L2 (Value.Int 2));
  Alcotest.check truth "NULL IN (1, NULL): 3vl" Truth.Unknown
    (eval Logic_mode.L3 Value.Null);
  Alcotest.check truth "NULL IN (1, NULL): 2vl" Truth.False
    (eval Logic_mode.L2 Value.Null);
  let np = A.Not p in
  Alcotest.check truth "2 NOT IN (1, NULL): 3vl" Truth.Unknown
    (eval_hosts ~logic:Logic_mode.L3 [ ("X", Value.Int 2) ] np);
  Alcotest.check truth "2 NOT IN (1, NULL): 2vl" Truth.True
    (eval_hosts ~logic:Logic_mode.L2 [ ("X", Value.Int 2) ] np)

(* ---- properties ---- *)

let truth_gen = QCheck2.Gen.oneofl all_truths

let prop_de_morgan =
  QCheck2.Test.make ~name:"3VL De Morgan: not (a and b) = not a or not b"
    ~count:200
    QCheck2.Gen.(pair truth_gen truth_gen)
    (fun (a, b) ->
      Truth.equal
        (Truth.not_ (Truth.and_ a b))
        (Truth.or_ (Truth.not_ a) (Truth.not_ b)))

let prop_and_comm =
  QCheck2.Test.make ~name:"3VL and commutative" ~count:200
    QCheck2.Gen.(pair truth_gen truth_gen)
    (fun (a, b) -> Truth.equal (Truth.and_ a b) (Truth.and_ b a))

let prop_or_assoc =
  QCheck2.Test.make ~name:"3VL or associative" ~count:200
    QCheck2.Gen.(triple truth_gen truth_gen truth_gen)
    (fun (a, b, c) ->
      Truth.equal (Truth.or_ a (Truth.or_ b c)) (Truth.or_ (Truth.or_ a b) c))

let prop_not_involutive =
  QCheck2.Test.make ~name:"3VL not involutive" ~count:50 truth_gen (fun a ->
      Truth.equal (Truth.not_ (Truth.not_ a)) a)

let prop_total_order_consistent_with_eq_null =
  QCheck2.Test.make ~name:"compare_total = 0 iff equal_null" ~count:500
    QCheck2.Gen.(pair Testsupport.Gen_sql.value_gen Testsupport.Gen_sql.value_gen)
    (fun (a, b) -> Value.equal_null a b = (Value.compare_total a b = 0))

let prop_eq3_true_implies_equal_null =
  QCheck2.Test.make ~name:"eq3 = True implies equal_null" ~count:500
    QCheck2.Gen.(pair Testsupport.Gen_sql.value_gen Testsupport.Gen_sql.value_gen)
    (fun (a, b) ->
      (not (Truth.equal (Value.eq3 a b) Truth.True)) || Value.equal_null a b)

(* ---- logic-mode properties ---- *)

(* Null-free agreement (the theorem the fuzzer's "logic" oracle checks
   dynamically): replace every null in a random predicate and binding
   with a non-null value; 3VL and 2VL must then coincide. *)
let denull v = if Value.is_null v then Value.Int 0 else v

let denull_scalar = function
  | A.Const v -> A.Const (denull v)
  | s -> s

let rec denull_pred = function
  | A.Ptrue -> A.Ptrue
  | A.Pfalse -> A.Pfalse
  | A.Cmp (op, a, b) -> A.Cmp (op, denull_scalar a, denull_scalar b)
  | A.Between (a, lo, hi) ->
    A.Between (denull_scalar a, denull_scalar lo, denull_scalar hi)
  | A.In_list (a, vs) -> A.In_list (denull_scalar a, List.map denull vs)
  | A.Is_null a -> A.Is_null (denull_scalar a)
  | A.Is_not_null a -> A.Is_not_null (denull_scalar a)
  | A.And (p, q) -> A.And (denull_pred p, denull_pred q)
  | A.Or (p, q) -> A.Or (denull_pred p, denull_pred q)
  | A.Not p -> A.Not (denull_pred p)
  | A.Exists _ as p -> p

let denull_env (env : G.env) =
  {
    G.cols = Schema.Attr.Map.map denull env.G.cols;
    G.host_vals = List.map (fun (h, v) -> (h, denull v)) env.G.host_vals;
  }

let eval_env logic (env : G.env) p =
  Logic.Eval.eval_pred_simple ~logic ~lookup_col:(G.lookup_col env)
    ~lookup_host:(G.lookup_host env) p

let prop_logics_agree_null_free =
  QCheck2.Test.make ~name:"3VL = 2VL on null-free predicates" ~count:1000
    ~print:G.pred_env_print G.pred_and_env_gen
    (fun (p, env) ->
      let p = denull_pred p and env = denull_env env in
      Truth.equal
        (eval_env Sqlval.Logic_mode.L3 env p)
        (eval_env Sqlval.Logic_mode.L2 env p))

(* Under 2VL no connective ever sees an Unknown, so no predicate —
   nulls or not — evaluates to Unknown. *)
let prop_2vl_is_two_valued =
  QCheck2.Test.make ~name:"2VL never yields Unknown" ~count:1000
    ~print:G.pred_env_print G.pred_and_env_gen
    (fun (p, env) ->
      not
        (Truth.equal (eval_env Sqlval.Logic_mode.L2 env p) Truth.Unknown))

let () =
  Alcotest.run "sqlval"
    [
      ( "truth",
        [
          Alcotest.test_case "not" `Quick test_not;
          Alcotest.test_case "and table" `Quick test_and_table;
          Alcotest.test_case "or table" `Quick test_or_table;
          Alcotest.test_case "interpretation operators (Table 2)" `Quick
            test_interpretations;
        ] );
      ( "value",
        [
          Alcotest.test_case "null comparison (Table 2)" `Quick
            test_null_comparison;
          Alcotest.test_case "3VL comparisons" `Quick test_comparisons;
          Alcotest.test_case "total order" `Quick test_compare_total;
          Alcotest.test_case "to_string" `Quick test_to_string;
        ] );
      ( "logic-modes",
        [
          Alcotest.test_case "Logic_mode.of_string" `Quick
            test_logic_mode_of_string;
          Alcotest.test_case "= under both logics" `Quick test_eq_two_logics;
          Alcotest.test_case "NOT under both logics" `Quick
            test_not_two_logics;
          Alcotest.test_case "IN under both logics" `Quick test_in_two_logics;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_de_morgan;
            prop_and_comm;
            prop_or_assoc;
            prop_not_involutive;
            prop_total_order_consistent_with_eq_null;
            prop_eq3_true_implies_equal_null;
            prop_logics_agree_null_free;
            prop_2vl_is_two_valued;
          ] );
    ]
