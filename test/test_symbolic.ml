(* Tests for the symbolic equivalence oracle: canonical-form laws
   (idempotence, commutativity/associativity of product and intersection,
   projection collapse, selection pushdown) on hand-built plans, the
   soundness of [Proved]/[Refuted] verdicts against the exhaustive checker
   and the execution engine, and the paper's running examples. *)

module A = Sql.Ast
module Attr = Schema.Attr
module Plan = Relalg.Plan
module Uexpr = Symbolic.Uexpr
module Equiv = Symbolic.Equiv
module Exact = Uniqueness.Exact
module Value = Sqlval.Value
module Case = Difftest.Case

let catalog = Workload.Paper_schema.catalog ()
let parse_spec = Sql.Parser.parse_query_spec
let parse_query = Sql.Parser.parse_query

let nf_exn plan =
  match Uexpr.of_plan catalog plan with
  | Ok nf -> nf
  | Error m -> Alcotest.failf "of_plan: %s" m

let nf_of_query q =
  match Uexpr.of_query catalog (parse_query q) with
  | Ok nf -> nf
  | Error m -> Alcotest.failf "of_query %S: %s" q m

let check_equal msg a b =
  if not (Uexpr.equal a b) then
    Alcotest.failf "%s:\n  %s\n  !=\n  %s" msg (Uexpr.to_string a)
      (Uexpr.to_string b)

let attr rel name = Attr.make ~rel ~name

(* ---- canonical-form idempotence ---- *)

let idempotence_queries =
  [
    "SELECT S.SNO, P.PNO FROM SUPPLIER S, PARTS P WHERE S.SNO = P.SNO";
    "SELECT DISTINCT SNAME FROM SUPPLIER WHERE SCITY = 'Toronto' OR BUDGET > 3";
    "SELECT S.SNO FROM SUPPLIER S WHERE S.SNO BETWEEN 1 AND 5 AND NOT \
     (S.SCITY = 'Chicago')";
    "SELECT P.PNO FROM PARTS P WHERE P.COLOR IN ('RED', 'BLUE') AND P.SNO \
     IS NOT NULL";
    "SELECT S.SNO FROM SUPPLIER S INTERSECT SELECT P.SNO FROM PARTS P";
    "SELECT S.SNO FROM SUPPLIER S EXCEPT SELECT P.SNO FROM PARTS P";
  ]

let test_normalize_idempotent () =
  List.iter
    (fun q ->
      let nf = nf_of_query q in
      check_equal ("normalize not idempotent on " ^ q) nf (Uexpr.normalize nf))
    idempotence_queries

(* ---- commutativity / associativity of x ---- *)

let test_product_commutes () =
  let q1 =
    "SELECT S.SNO, P.PNO FROM SUPPLIER S, PARTS P WHERE S.SNO = P.SNO"
  in
  let q2 =
    "SELECT S.SNO, P.PNO FROM PARTS P, SUPPLIER S WHERE S.SNO = P.SNO"
  in
  check_equal "FROM-list order must not matter" (nf_of_query q1)
    (nf_of_query q2);
  match Equiv.queries catalog (parse_query q1) (parse_query q2) with
  | Equiv.Proved -> ()
  | v -> Alcotest.failf "expected Proved, got %s" (Equiv.verdict_to_string v)

let test_product_associates () =
  let scan t c = Plan.Scan { table = t; corr = c } in
  let proj sub =
    Plan.Project
      (A.All, [ Plan.Pcol (attr "S" "SNO"); Plan.Pcol (attr "P" "PNO") ], sub)
  in
  let left =
    proj
      (Plan.Product
         (Plan.Product (scan "SUPPLIER" "S", scan "PARTS" "P"),
          scan "AGENTS" "AG"))
  in
  let right =
    proj
      (Plan.Product
         (scan "SUPPLIER" "S",
          Plan.Product (scan "PARTS" "P", scan "AGENTS" "AG")))
  in
  check_equal "product associativity" (nf_exn left) (nf_exn right)

(* ---- commutativity / associativity of intersect ---- *)

let test_intersect_commutes () =
  let a = "SELECT S.SNO FROM SUPPLIER S" in
  let b = "SELECT P.SNO FROM PARTS P WHERE P.COLOR = 'RED'" in
  check_equal "INTERSECT commutativity"
    (nf_of_query (a ^ " INTERSECT " ^ b))
    (nf_of_query (b ^ " INTERSECT " ^ a))

let test_intersect_associates () =
  let a = "SELECT S.SNO FROM SUPPLIER S" in
  let b = "SELECT P.SNO FROM PARTS P WHERE P.COLOR = 'RED'" in
  let c = "SELECT P.SNO FROM PARTS P WHERE P.PNO > 2" in
  (* the parser nests set operations left-to-right; build the right-nested
     tree by hand *)
  let q1 = parse_query (a ^ " INTERSECT " ^ b ^ " INTERSECT " ^ c) in
  let q2 =
    A.Setop
      (A.Intersect, A.Distinct, parse_query a,
       A.Setop (A.Intersect, A.Distinct, parse_query b, parse_query c))
  in
  let nf q =
    match Uexpr.of_query catalog q with
    | Ok nf -> nf
    | Error m -> Alcotest.failf "of_query: %s" m
  in
  check_equal "INTERSECT associativity" (nf q1) (nf q2)

(* ---- projection collapse ---- *)

let test_project_project_collapses () =
  let scan = Plan.Scan { table = "SUPPLIER"; corr = "S" } in
  let wide =
    Plan.Project
      (A.All,
       [ Plan.Pcol (attr "S" "SNO"); Plan.Pcol (attr "S" "SNAME") ],
       scan)
  in
  (* the outer projection refers to the synthesized output schema *)
  let narrow_over_wide =
    Plan.Project (A.All, [ Plan.Pcol (attr "" "SNO") ], wide)
  in
  let narrow = Plan.Project (A.All, [ Plan.Pcol (attr "S" "SNO") ], scan) in
  check_equal "pi o pi collapse" (nf_exn narrow_over_wide) (nf_exn narrow)

(* ---- selection pushdown invariance ---- *)

let test_select_pushdown_product () =
  let scan_s = Plan.Scan { table = "SUPPLIER"; corr = "S" } in
  let scan_p = Plan.Scan { table = "PARTS"; corr = "P" } in
  let p_s =
    A.Cmp (A.Eq, A.Col (attr "S" "SCITY"), A.Const (Value.String "Toronto"))
  in
  let p_p = A.Cmp (A.Gt, A.Col (attr "P" "PNO"), A.Const (Value.Int 1)) in
  let proj sub =
    Plan.Project
      (A.All, [ Plan.Pcol (attr "S" "SNO"); Plan.Pcol (attr "P" "PNO") ], sub)
  in
  let above =
    proj (Plan.Select (A.And (p_s, p_p), Plan.Product (scan_s, scan_p)))
  in
  let below =
    proj (Plan.Product (Plan.Select (p_s, scan_s), Plan.Select (p_p, scan_p)))
  in
  check_equal "sigma pushdown through x" (nf_exn above) (nf_exn below)

let test_select_commutes_with_project () =
  let scan = Plan.Scan { table = "SUPPLIER"; corr = "S" } in
  let pred col =
    A.Cmp (A.Eq, A.Col col, A.Const (Value.String "Toronto"))
  in
  let above =
    Plan.Select
      (pred (attr "" "SCITY"),
       Plan.Project
         (A.All,
          [ Plan.Pcol (attr "S" "SNO"); Plan.Pcol (attr "S" "SCITY") ],
          scan))
  in
  let below =
    Plan.Project
      (A.All,
       [ Plan.Pcol (attr "S" "SNO"); Plan.Pcol (attr "S" "SCITY") ],
       Plan.Select (pred (attr "S" "SCITY"), scan))
  in
  check_equal "sigma commutes with pi" (nf_exn above) (nf_exn below)

(* ---- verdicts on the paper's running examples ---- *)

let test_paper_examples () =
  let proved q =
    match Equiv.distinct_redundant catalog (parse_spec q) with
    | Equiv.Proved -> true
    | _ -> false
  in
  Alcotest.(check bool) "Example 1 is symbolically Proved" true
    (proved
       "SELECT DISTINCT S.SNO, P.PNO, P.PNAME FROM SUPPLIER S, PARTS P \
        WHERE S.SNO = P.SNO AND P.COLOR = 'RED'");
  (* Example 2 projects SNAME (not a key): duplicates are possible, so the
     sound oracle must not prove it *)
  Alcotest.(check bool) "Example 2 is not Proved" false
    (proved
       "SELECT DISTINCT S.SNAME, P.PNO, P.PNAME FROM SUPPLIER S, PARTS P \
        WHERE S.SNO = P.SNO AND P.COLOR = 'RED'")

let test_refuted_carries_verified_witness () =
  let spec =
    parse_spec "SELECT DISTINCT S.SNAME FROM SUPPLIER S WHERE S.BUDGET <> 0"
  in
  match Equiv.distinct_redundant catalog spec with
  | Equiv.Refuted hint ->
    (* replay the hint: ALL and DISTINCT must really disagree *)
    let db = Engine.Database.create catalog in
    List.iter (fun (t, rows) -> Engine.Database.load db t rows) hint.instance;
    Alcotest.(check bool) "hinted instance is valid" true
      (Engine.Database.validate db = []);
    let run distinct =
      Engine.Exec.run_query db ~hosts:hint.Equiv.hosts
        (A.Spec { spec with A.distinct })
    in
    Alcotest.(check bool) "ALL <> DISTINCT on the hint" false
      (Engine.Relation.equal_bags (run A.All) (run A.Distinct))
  | v ->
    Alcotest.failf "expected Refuted, got %s" (Equiv.verdict_to_string v)

(* ---- property: Proved never disagrees with Exact or the engine ---- *)

let test_proved_sound_on_random_cases () =
  let rng = Random.State.make [| 0x5EED; 500 |] in
  let cases = 500 in
  let proved = ref 0 in
  let refuted = ref 0 in
  for i = 1 to cases do
    let case = Case.generate ~rng ~instances:1 ~rows:4 () in
    match case.Case.query with
    | A.Setop _ -> ()
    | A.Spec spec when spec.A.group_by <> [] -> ()
    | A.Spec spec ->
      let cat = Case.catalog case in
      (match Equiv.distinct_redundant cat spec with
       | Equiv.Unknown _ -> ()
       | Equiv.Refuted hint ->
         incr refuted;
         (* refutations are engine-verified by construction; spot-check *)
         let db = Engine.Database.create cat in
         List.iter
           (fun (t, rows) -> Engine.Database.load db t rows)
           hint.Equiv.instance;
         if Engine.Database.validate db <> [] then
           Alcotest.failf "case %d: refutation instance invalid" i
       | Equiv.Proved ->
         incr proved;
         (* 1. exhaustive two-tuple enumeration must not find duplicates *)
         (match
            Exact.check ~max_cells:50_000 ~max_pairs:200_000 cat spec
          with
          | Exact.Duplicable _ ->
            Alcotest.failf "case %d: symbolic Proved but Exact Duplicable" i
          | Exact.Unique | Exact.Unsupported _ -> ()
          | exception Exact.Too_large _ -> ());
         (* 2. ALL = DISTINCT on every generated instance *)
         List.iter
           (fun inst ->
             let db = Case.database case inst in
             let run distinct =
               Engine.Exec.run_query db ~hosts:inst.Case.hosts
                 (A.Spec { spec with A.distinct })
             in
             match run A.All, run A.Distinct with
             | all, dist ->
               if not (Engine.Relation.equal_bags all dist) then
                 Alcotest.failf
                   "case %d: symbolic Proved but ALL <> DISTINCT on a \
                    generated instance"
                   i
             | exception _ -> ())
           case.Case.instances)
  done;
  (* the oracle must actually decide a useful share of random cases *)
  if !proved = 0 then Alcotest.fail "no random case was Proved";
  if !refuted = 0 then Alcotest.fail "no random case was Refuted"

let () =
  Alcotest.run "symbolic"
    [
      ( "canonical-form",
        [
          Alcotest.test_case "normalize is idempotent" `Quick
            test_normalize_idempotent;
          Alcotest.test_case "product commutes" `Quick test_product_commutes;
          Alcotest.test_case "product associates" `Quick
            test_product_associates;
          Alcotest.test_case "intersect commutes" `Quick
            test_intersect_commutes;
          Alcotest.test_case "intersect associates" `Quick
            test_intersect_associates;
          Alcotest.test_case "pi o pi collapses" `Quick
            test_project_project_collapses;
          Alcotest.test_case "sigma pushes through product" `Quick
            test_select_pushdown_product;
          Alcotest.test_case "sigma commutes with pi" `Quick
            test_select_commutes_with_project;
        ] );
      ( "verdicts",
        [
          Alcotest.test_case "paper examples" `Quick test_paper_examples;
          Alcotest.test_case "refutation is engine-verified" `Quick
            test_refuted_carries_verified_witness;
          Alcotest.test_case "Proved sound on 500 random cases" `Slow
            test_proved_sound_on_random_cases;
        ] );
    ]
