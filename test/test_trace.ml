(* Decision-trace tests: the rendered explain output for the paper's
   flagship example is pinned exactly (tree and JSON), and a fixed-seed
   fuzz hook asserts that turning tracing on never changes an analyzer
   verdict, a rewrite result, or a query result. *)

module D = Difftest
module A1 = Uniqueness.Algorithm1
module R = Uniqueness.Rewrite

let catalog = Workload.Paper_schema.catalog ()

let example1 =
  "SELECT DISTINCT S.SNO, P.PNO, P.PNAME FROM SUPPLIER S, PARTS P WHERE \
   S.SNO = P.SNO AND P.COLOR = 'RED'"

let algorithm1_nodes sql =
  let t = Trace.make () in
  ignore (A1.analyze ~trace:t catalog (Sql.Parser.parse_query_spec sql));
  Trace.nodes t

(* ---- exact snapshots (paper Example 1) ---- *)

let expected_tree =
  {|* algorithm1.line5 -- the selection predicate in conjunctive normal form
    < C = S.SNO = P.SNO AND P.COLOR = 'RED' AND T
* algorithm1.line6-9 -- C is unchanged
* algorithm1.line10 -- C is not simply true; we proceed
* algorithm1.line11 -- the remaining equality conditions in disjunctive normal form
    < E1 = S.SNO = P.SNO AND P.COLOR = 'RED'
* algorithm1.line13 -- V starts as the projection attributes
    > V = {P.PNAME, P.PNO, S.SNO}
* algorithm1.line14 -- columns pinned by Type-1 equalities join V
    < P.COLOR = P.COLOR = 'RED'
    > V = {P.COLOR, P.PNAME, P.PNO, S.SNO}
* algorithm1.line15-16 -- transitive closure of V under the Type-2 equalities
    > V = {P.COLOR, P.PNAME, P.PNO, P.SNO, S.SNO}
  * closure.type2 -- Type-2 equality propagates bound-ness transitively
      < condition = S.SNO = P.SNO
      > bound = P.SNO
* algorithm1.line17 (Theorem 1) -- does V contain a candidate key of every table of the product?
    > S = candidate key {S.SNO} is contained in V
    > P = candidate key {P.PNO, P.SNO} is contained in V
* [YES] algorithm1.verdict (Theorem 1 / Algorithm 1) -- a candidate key of every table is functionally bound
    > V = {P.COLOR, P.PNAME, P.PNO, P.SNO, S.SNO}|}

let test_tree_snapshot () =
  let got = Format.asprintf "%a" Trace.pp (algorithm1_nodes example1) in
  Alcotest.(check string) "Example 1 Algorithm 1 tree" expected_tree got

let expected_json =
  {|[{"rule":"algorithm1.line5","verdict":"info","detail":"the selection predicate in conjunctive normal form","inputs":{"C":"S.SNO = P.SNO AND P.COLOR = 'RED' AND T"}},{"rule":"algorithm1.line6-9","verdict":"info","detail":"C is unchanged"},{"rule":"algorithm1.line10","verdict":"info","detail":"C is not simply true; we proceed"},{"rule":"algorithm1.line11","verdict":"info","detail":"the remaining equality conditions in disjunctive normal form","inputs":{"E1":"S.SNO = P.SNO AND P.COLOR = 'RED'"}},{"rule":"algorithm1.line13","verdict":"info","detail":"V starts as the projection attributes","facts":{"V":"{P.PNAME, P.PNO, S.SNO}"}},{"rule":"algorithm1.line14","verdict":"info","detail":"columns pinned by Type-1 equalities join V","inputs":{"P.COLOR":"P.COLOR = 'RED'"},"facts":{"V":"{P.COLOR, P.PNAME, P.PNO, S.SNO}"}},{"rule":"algorithm1.line15-16","verdict":"info","detail":"transitive closure of V under the Type-2 equalities","facts":{"V":"{P.COLOR, P.PNAME, P.PNO, P.SNO, S.SNO}"},"children":[{"rule":"closure.type2","verdict":"info","detail":"Type-2 equality propagates bound-ness transitively","inputs":{"condition":"S.SNO = P.SNO"},"facts":{"bound":"P.SNO"}}]},{"rule":"algorithm1.line17","citation":"Theorem 1","verdict":"info","detail":"does V contain a candidate key of every table of the product?","facts":{"S":"candidate key {S.SNO} is contained in V","P":"candidate key {P.PNO, P.SNO} is contained in V"}},{"rule":"algorithm1.verdict","citation":"Theorem 1 / Algorithm 1","verdict":"yes","detail":"a candidate key of every table is functionally bound","facts":{"V":"{P.COLOR, P.PNAME, P.PNO, P.SNO, S.SNO}"}}]|}

let test_json_snapshot () =
  let got = Trace.Json.to_string (Trace.to_json (algorithm1_nodes example1)) in
  Alcotest.(check string) "Example 1 Algorithm 1 JSON" expected_json got

(* the pretty printer must round-trip: same document, only whitespace
   outside string literals may differ *)
let strip_outside_strings s =
  let b = Buffer.create (String.length s) in
  let in_string = ref false and escaped = ref false in
  String.iter
    (fun c ->
      if !in_string then begin
        Buffer.add_char b c;
        if !escaped then escaped := false
        else if c = '\\' then escaped := true
        else if c = '"' then in_string := false
      end
      else if c = '"' then begin
        Buffer.add_char b c;
        in_string := true
      end
      else if not (c = ' ' || c = '\n') then Buffer.add_char b c)
    s;
  Buffer.contents b

let test_json_pretty_roundtrip () =
  let doc = Trace.to_json (algorithm1_nodes example1) in
  Alcotest.(check string) "pretty and compact agree modulo layout"
    (strip_outside_strings (Trace.Json.to_string doc))
    (strip_outside_strings (Trace.Json.to_string_pretty doc))

(* ---- the full explain report ---- *)

let contains hay needle =
  let lh = String.length hay and ln = String.length needle in
  let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
  go 0

let test_report_names_the_evidence () =
  let report = Explain.explain catalog (Sql.Parser.parse_query example1) in
  let rendered = Format.asprintf "%a" Explain.pp report in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("report mentions: " ^ needle) true
        (contains rendered needle))
    [ "candidate key {S.SNO} is contained in V";
      "candidate key {P.PNO, P.SNO} is contained in V";
      "closure.type2";
      "Theorem 1 / Algorithm 1";
      "[YES]";
      "[APPLIED] distinct-removal (Theorem 1)";
      "[CHOSEN]" ];
  Alcotest.(check string) "rewritten form drops the DISTINCT"
    "SELECT ALL S.SNO, P.PNO, P.PNAME FROM SUPPLIER S, PARTS P WHERE S.SNO = \
     P.SNO AND P.COLOR = 'RED'"
    (Sql.Pretty.query report.Explain.rewritten)

let test_report_deterministic () =
  let build () =
    Trace.Json.to_string
      (Explain.to_json (Explain.explain catalog (Sql.Parser.parse_query example1)))
  in
  Alcotest.(check string) "two builds render identically" (build ()) (build ())

let test_setop_report () =
  let q =
    Sql.Parser.parse_query
      "SELECT ALL S.SNO FROM SUPPLIER S WHERE S.SCITY = 'Toronto' INTERSECT \
       SELECT ALL A.SNO FROM AGENTS A WHERE A.ACITY = 'Ottawa'"
  in
  let rendered = Format.asprintf "%a" Explain.pp (Explain.explain catalog q) in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("setop report mentions: " ^ needle) true
        (contains rendered needle))
    [ "algorithm1.operand"; "operand = left"; "operand = right";
      "[APPLIED] intersect-to-exists (Theorem 3 / Corollary 2)" ]

(* ---- fuzz hook: tracing must never change behaviour ---- *)

let rng_of seed = Random.State.make [| seed |]

let prop_trace_never_changes_verdicts =
  QCheck2.Test.make
    ~name:"tracing on/off: identical analyzer verdicts and rewrite results"
    ~count:200 QCheck2.Gen.int
    (fun seed ->
      let rng = rng_of seed in
      let ddl = D.Schema_gen.generate ~rng in
      let cat = D.Schema_gen.catalog_of_ddl ddl in
      let spec = D.Query_gen.spec ~rng cat in
      let q = D.Query_gen.query ~rng cat in
      let traced f = f ~trace:(Trace.make ()) and plain f = f ~trace:Trace.disabled in
      let a1 ~trace = (A1.analyze ~trace cat spec).A1.answer in
      let fd ~trace =
        (Uniqueness.Fd_analysis.analyze ~trace cat spec).Uniqueness.Fd_analysis.unique
      in
      let rw ~trace = fst (R.apply_all ~trace cat q) in
      traced a1 = plain a1 && traced fd = plain fd && traced rw = plain rw)

let prop_explain_never_changes_results =
  QCheck2.Test.make
    ~name:"building an explain report never changes query results"
    ~count:60 QCheck2.Gen.int
    (fun seed ->
      let rng = rng_of seed in
      let case = D.Case.generate ~rng ~instances:1 ~rows:4 () in
      let cat = D.Case.catalog case in
      match case.D.Case.instances with
      | [] -> true
      | inst :: _ ->
        let db = D.Case.database case inst in
        let hosts = inst.D.Case.hosts in
        let direct =
          Engine.Exec.run_query db ~hosts case.D.Case.query
        in
        let report =
          Explain.explain ~stats:(Engine.Database.row_count db) ~database:db
            ~hosts cat case.D.Case.query
        in
        (match report.Explain.executions with
         | { Explain.label = "as-written"; rows; _ } :: _ ->
           rows = Engine.Relation.cardinality direct
         | _ -> false))

let qsuite =
  List.map QCheck_alcotest.to_alcotest
    [ prop_trace_never_changes_verdicts; prop_explain_never_changes_results ]

let () =
  Alcotest.run "trace"
    [ ("snapshots",
       [ Alcotest.test_case "example 1 tree" `Quick test_tree_snapshot;
         Alcotest.test_case "example 1 json" `Quick test_json_snapshot;
         Alcotest.test_case "json pretty round-trip" `Quick
           test_json_pretty_roundtrip ]);
      ("report",
       [ Alcotest.test_case "names the evidence" `Quick
           test_report_names_the_evidence;
         Alcotest.test_case "deterministic" `Quick test_report_deterministic;
         Alcotest.test_case "set operations" `Quick test_setop_report ]);
      ("fuzz", qsuite) ]
