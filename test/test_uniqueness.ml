(* Tests for the paper's core contribution: Algorithm 1, the FD-based
   analyzer, and the exact (bounded-model) Theorem 1 checker — exercised on
   the paper's running examples and cross-validated against each other and
   against the execution engine. *)

module A1 = Uniqueness.Algorithm1
module FdA = Uniqueness.Fd_analysis
module Exact = Uniqueness.Exact
module Value = Sqlval.Value

let catalog = Workload.Paper_schema.catalog ()
let parse = Sql.Parser.parse_query_spec

let a1_yes ?paper_strict q = A1.distinct_is_redundant ?paper_strict catalog (parse q)
let fd_yes q = FdA.distinct_is_redundant catalog (parse q)

let exact_unique q =
  match Exact.check catalog (parse q) with
  | Exact.Unique -> true
  | Exact.Duplicable _ -> false
  | Exact.Unsupported reason -> Alcotest.fail ("unsupported: " ^ reason)

(* The paper's examples *)

let example1 =
  "SELECT DISTINCT S.SNO, P.PNO, P.PNAME FROM SUPPLIER S, PARTS P WHERE \
   S.SNO = P.SNO AND P.COLOR = 'RED'"

let example2 =
  "SELECT DISTINCT S.SNAME, P.PNO, P.PNAME FROM SUPPLIER S, PARTS P WHERE \
   S.SNO = P.SNO AND P.COLOR = 'RED'"

let example4 =
  "SELECT DISTINCT S.SNO, SNAME, P.PNO, PNAME FROM SUPPLIER S, PARTS P \
   WHERE P.SNO = :SUPPLIER_NO AND S.SNO = P.SNO"

let example6 =
  "SELECT DISTINCT S.SNO, PNO, PNAME, P.COLOR FROM SUPPLIER S, PARTS P \
   WHERE S.SNAME = :SUPPLIER_NAME AND S.SNO = P.SNO"

(* ---- Algorithm 1 on the paper's examples ---- *)

let test_example1 () =
  Alcotest.(check bool) "Example 1: DISTINCT unnecessary" true (a1_yes example1)

let test_example2 () =
  Alcotest.(check bool) "Example 2: DISTINCT required" false (a1_yes example2)

let test_example4 () =
  Alcotest.(check bool) "Example 4: DISTINCT unnecessary" true (a1_yes example4)

let test_example6 () =
  Alcotest.(check bool) "Example 6: DISTINCT unnecessary" true (a1_yes example6)

(* Example 5 is the paper's step-by-step trace of Algorithm 1 on the
   Example 4 query; reproduce its milestones. *)
let test_example5_trace () =
  let report = A1.analyze catalog (parse example4) in
  Alcotest.(check bool) "YES" true (report.A1.answer = A1.Yes);
  let find line =
    match List.find_opt (fun s -> s.A1.line = line) report.A1.trace with
    | Some s -> s.A1.detail
    | None -> Alcotest.failf "no trace step for line %s" line
  in
  let contains hay needle =
    let h = String.uppercase_ascii hay and n = String.uppercase_ascii needle in
    let lh = String.length h and ln = String.length n in
    let rec go i = i + ln <= lh && (String.sub h i ln = n || go (i + 1)) in
    go 0
  in
  (* Line 5: C <=> P.SNO = :SUPPLIER_NO AND S.SNO = P.SNO AND T *)
  Alcotest.(check bool) "line 5 has both conjuncts" true
    (contains (find "5") "P.SNO = :SUPPLIER_NO" && contains (find "5") "S.SNO = P.SNO");
  (* Lines 6-9: C unchanged *)
  Alcotest.(check bool) "lines 6-9 unchanged" true
    (contains (find "6-9") "unchanged");
  (* Line 13: V = projection attributes *)
  Alcotest.(check bool) "line 13 V holds projection" true
    (contains (find "13") "S.SNO" && contains (find "13") "P.PNO");
  (* Line 14: P.SNO added as a Type-1 column *)
  Alcotest.(check bool) "line 14 adds P.SNO" true (contains (find "14") "P.SNO");
  (* Line 20: returns YES *)
  Alcotest.(check bool) "line 20 YES" true (contains (find "20") "YES")

let test_trace_shows_deletions () =
  let q = "SELECT DISTINCT S.SNO FROM SUPPLIER S WHERE S.SNO = 1 AND S.BUDGET > 5" in
  let report = A1.analyze catalog (parse q) in
  Alcotest.(check bool) "non-equality clause deleted" true
    (List.exists
       (fun s -> s.A1.line = "6-9" && s.A1.detail <> "C is unchanged")
       report.A1.trace)

(* ---- boundary behaviour ---- *)

let test_no_predicate_full_key () =
  (* key fully projected, empty WHERE: intended behaviour says YES *)
  let q = "SELECT DISTINCT P.SNO, P.PNO FROM PARTS P" in
  Alcotest.(check bool) "default mode: YES" true (a1_yes q);
  (* printed algorithm (line 10) would return NO *)
  Alcotest.(check bool) "paper-strict: NO" false (a1_yes ~paper_strict:true q)

let test_composite_key_partial () =
  (* only half of PARTS' composite key: duplicates possible *)
  Alcotest.(check bool) "partial key" false
    (a1_yes "SELECT DISTINCT P.PNO FROM PARTS P")

let test_key_via_constant () =
  (* missing key column pinned by a constant *)
  Alcotest.(check bool) "constant completes key" true
    (a1_yes "SELECT DISTINCT P.PNO FROM PARTS P WHERE P.SNO = 7")

let test_key_via_transitivity () =
  (* S.SNO in projection; P.SNO = S.SNO makes P's key complete with P.PNO *)
  Alcotest.(check bool) "transitive closure" true
    (a1_yes
       "SELECT DISTINCT S.SNO, P.PNO FROM SUPPLIER S, PARTS P WHERE P.SNO = S.SNO")

let test_disjunction_rejected () =
  Alcotest.(check bool) "x = 5 OR x = 10 unusable" false
    (a1_yes "SELECT DISTINCT P.PNO FROM PARTS P WHERE P.SNO = 5 OR P.SNO = 10")

let test_inequality_rejected () =
  Alcotest.(check bool) "range predicate unusable" false
    (a1_yes "SELECT DISTINCT P.PNO FROM PARTS P WHERE P.SNO > 5")

let test_unsatisfiable_predicate () =
  (* WHERE FALSE: the result is empty, hence trivially duplicate-free, but
     Algorithm 1 deletes the FALSE clause (it is not an equality) and
     answers NO — sound, not complete. The exact checker gets it right. *)
  Alcotest.(check bool) "Algorithm 1 conservatively says NO" false
    (a1_yes "SELECT DISTINCT P.PNAME FROM PARTS P WHERE FALSE");
  Alcotest.(check bool) "exact checker proves uniqueness" true
    (exact_unique "SELECT ALL P.PNAME FROM PARTS P WHERE FALSE")

let test_candidate_key_unique_clause () =
  (* OEM_PNO is a candidate key (UNIQUE), good enough for the test *)
  Alcotest.(check bool) "candidate key in projection" true
    (a1_yes "SELECT DISTINCT P.OEM_PNO FROM PARTS P")

let test_three_tables () =
  (* Theorem 1 extends to more than two tables *)
  let q =
    "SELECT DISTINCT S.SNO, P.PNO, A.ANO FROM SUPPLIER S, PARTS P, AGENTS A \
     WHERE S.SNO = P.SNO AND A.SNO = S.SNO"
  in
  Alcotest.(check bool) "three-table key" true (a1_yes q)

let test_three_tables_missing_one () =
  let q =
    "SELECT DISTINCT S.SNO, P.PNO FROM SUPPLIER S, PARTS P, AGENTS A \
     WHERE S.SNO = P.SNO AND A.SNO = S.SNO"
  in
  Alcotest.(check bool) "agents key missing" false (a1_yes q)

(* ---- FD analyzer: strictly more powerful on key-dependency chains ---- *)

let test_fd_agrees_on_examples () =
  Alcotest.(check bool) "ex1" true (fd_yes example1);
  Alcotest.(check bool) "ex2" false (fd_yes example2);
  Alcotest.(check bool) "ex4" true (fd_yes example4);
  Alcotest.(check bool) "ex6" true (fd_yes example6)

let test_fd_beats_algorithm1 () =
  (* OEM_PNO -> (SNO, PNO) is a key dependency, not an equality; Algorithm 1
     cannot traverse it, the FD closure can. *)
  let q =
    "SELECT DISTINCT P.OEM_PNO, S.SNAME FROM SUPPLIER S, PARTS P WHERE \
     S.SNO = P.SNO"
  in
  Alcotest.(check bool) "Algorithm 1 misses it" false (a1_yes q);
  Alcotest.(check bool) "FD closure detects it" true (fd_yes q)

(* ---- exact checker ---- *)

let test_exact_examples () =
  Alcotest.(check bool) "ex1 unique" true (exact_unique example1);
  Alcotest.(check bool) "ex2 duplicable" false (exact_unique example2);
  Alcotest.(check bool) "ex4 unique" true (exact_unique example4)

let test_exact_counterexample_is_concrete () =
  match Exact.check catalog (parse example2) with
  | Exact.Unique -> Alcotest.fail "expected a counterexample"
  | Exact.Unsupported reason -> Alcotest.fail ("unsupported: " ^ reason)
  | Exact.Duplicable ce ->
    (* the witness projections must agree (that is the duplicate) *)
    Alcotest.(check int) "arity" (Array.length ce.Exact.row1)
      (Array.length ce.Exact.row2);
    Array.iteri
      (fun i v ->
        Alcotest.(check bool) "projected rows agree" true
          (Value.equal_null v ce.Exact.row2.(i)))
      ce.Exact.row1

let test_exact_detects_nonkey_duplicates () =
  (* single table, non-key projection *)
  Alcotest.(check bool) "COLOR duplicable" false
    (exact_unique "SELECT ALL P.COLOR FROM PARTS P");
  Alcotest.(check bool) "full key unique" true
    (exact_unique "SELECT ALL P.SNO, P.PNO FROM PARTS P")

let test_exact_range_predicates () =
  (* exact checker handles ranges that Algorithm 1 gives up on: a range
     containing a single value pins the key *)
  Alcotest.(check bool) "singleton range unique" true
    (exact_unique "SELECT ALL P.PNO FROM PARTS P WHERE P.SNO BETWEEN 7 AND 7");
  Alcotest.(check bool) "wide range duplicable" false
    (exact_unique "SELECT ALL P.PNO FROM PARTS P WHERE P.SNO BETWEEN 7 AND 9")

let test_exact_too_large () =
  (* guard must trip on tiny budgets instead of hanging *)
  match Exact.check ~max_cells:10 catalog (parse example1) with
  | exception Exact.Too_large _ -> ()
  | _ -> Alcotest.fail "expected Too_large"

(* ---- cross-validation properties ---- *)

(* Random single/two-table queries over a small ad-hoc schema. *)
let small_catalog =
  List.fold_left Catalog.add_ddl Catalog.empty
    [ "CREATE TABLE R (A INT NOT NULL, B INT, C INT, PRIMARY KEY (A))";
      "CREATE TABLE S (D INT NOT NULL, E INT, PRIMARY KEY (D))" ]

let random_query_gen : Sql.Ast.query_spec QCheck2.Gen.t =
  let open QCheck2.Gen in
  let cols_r = [ "R.A"; "R.B"; "R.C" ] and cols_s = [ "S.D"; "S.E" ] in
  let* two_tables = bool in
  let cols = if two_tables then cols_r @ cols_s else cols_r in
  let* proj =
    map2
      (fun picks fallback ->
        let chosen = List.filteri (fun i _ -> List.nth picks i) cols in
        if chosen = [] then [ List.nth cols (fallback mod List.length cols) ]
        else chosen)
      (list_repeat (List.length cols) bool)
      nat
  in
  let eq_pred =
    let* c = oneofl cols in
    let* rhs =
      oneof
        [ map (fun i -> Sql.Ast.Const (Value.Int i)) (int_range 0 2);
          map (fun c2 -> Sql.Ast.Col (Schema.Attr.of_string c2)) (oneofl cols) ]
    in
    return (Sql.Ast.Cmp (Sql.Ast.Eq, Sql.Ast.Col (Schema.Attr.of_string c), rhs))
  in
  let* preds = list_size (int_range 0 3) eq_pred in
  return
    (Sql.Ast.plain_spec ~distinct:Sql.Ast.Distinct
       ~select:
         (Sql.Ast.Cols
            (List.map (fun c -> Sql.Ast.Col (Schema.Attr.of_string c)) proj))
       ~from:
         (if two_tables then
            [ { Sql.Ast.table = "R"; corr = None };
              { Sql.Ast.table = "S"; corr = None } ]
          else [ { Sql.Ast.table = "R"; corr = None } ])
       ~where:(Sql.Ast.conj preds) ())

let print_spec q = Sql.Pretty.query_spec q

(* Soundness: whenever Algorithm 1 (or the FD analyzer) says YES, the exact
   checker finds no duplicate-producing instance. *)
let prop_algorithm1_sound_vs_exact =
  QCheck2.Test.make ~name:"Algorithm 1 sound w.r.t. exact checker" ~count:150
    ~print:print_spec random_query_gen (fun q ->
      (not (A1.distinct_is_redundant small_catalog q))
      || Exact.check small_catalog q = Exact.Unique)

let prop_fd_sound_vs_exact =
  QCheck2.Test.make ~name:"FD analyzer sound w.r.t. exact checker" ~count:150
    ~print:print_spec random_query_gen (fun q ->
      (not (FdA.distinct_is_redundant small_catalog q))
      || Exact.check small_catalog q = Exact.Unique)

(* Algorithm 1 never detects a case the FD analyzer misses. *)
let prop_fd_dominates_algorithm1 =
  QCheck2.Test.make ~name:"FD analyzer dominates Algorithm 1" ~count:300
    ~print:print_spec random_query_gen (fun q ->
      (not (A1.distinct_is_redundant small_catalog q))
      || FdA.distinct_is_redundant small_catalog q)

(* Adding an equality conjunct only grows Algorithm 1's closure: a YES can
   never flip to NO. *)
let prop_algorithm1_monotone =
  QCheck2.Test.make ~name:"Algorithm 1 monotone under added equalities"
    ~count:300 ~print:print_spec random_query_gen (fun q ->
      let strengthened =
        {
          q with
          Sql.Ast.where =
            Sql.Ast.And
              ( q.Sql.Ast.where,
                Sql.Ast.Cmp
                  ( Sql.Ast.Eq,
                    Sql.Ast.Col (Schema.Attr.of_string "R.C"),
                    Sql.Ast.Const (Value.Int 1) ) );
        }
      in
      (not (A1.distinct_is_redundant small_catalog q))
      || A1.distinct_is_redundant small_catalog strengthened)

(* The paper-strict mode only ever says NO more often. *)
let prop_paper_strict_is_weaker =
  QCheck2.Test.make ~name:"paper-strict answers are a subset of default"
    ~count:300 ~print:print_spec random_query_gen (fun q ->
      (not (A1.distinct_is_redundant ~paper_strict:true small_catalog q))
      || A1.distinct_is_redundant small_catalog q)

(* Soundness against the engine: if the analysis says YES then evaluating
   with ALL equals evaluating with DISTINCT on a random generated database. *)
(* ---- the normalization clause budget (sound MAYBE) ---- *)

let test_budget_maybe () =
  (* a nested OR-of-ANDs whose CNF needs 2^14 clauses: Algorithm 1 must
     give up soundly, leave a norm.budget node, and keep the DISTINCT *)
  let rng = Random.State.make [| 42 |] in
  let q = Difftest.Query_gen.nested_or_spec ~rng ~width:14 catalog in
  let trace = Trace.make () in
  let r = A1.analyze ~trace catalog q in
  Alcotest.(check bool) "answers MAYBE" true (r.A1.answer = A1.Maybe);
  let rec has_budget (n : Trace.node) =
    n.Trace.rule = "norm.budget" || List.exists has_budget n.Trace.children
  in
  Alcotest.(check bool) "norm.budget node in the trace" true
    (List.exists has_budget (Trace.nodes trace));
  Alcotest.(check bool) "MAYBE keeps the DISTINCT" false
    (A1.distinct_is_redundant catalog q)

let test_budget_knob () =
  (* Example 1's CNF has two clauses: a budget of 1 forces the give-up
     path on a query the default budget answers YES *)
  let q = parse example1 in
  let r = A1.analyze ~budget:1 catalog q in
  Alcotest.(check bool) "budget 1 gives up" true (r.A1.answer = A1.Maybe);
  Alcotest.(check bool) "default budget still answers YES" true
    (A1.distinct_is_redundant catalog q)

let test_nested_or_generator_blows_budget () =
  (* the generator's atoms are pairwise distinct by construction, so the
     budget path fires on every generated catalog, not just the paper's *)
  let rng = Random.State.make [| 3 |] in
  for _ = 1 to 10 do
    let ddl = Difftest.Schema_gen.generate ~rng in
    let cat = Difftest.Schema_gen.catalog_of_ddl ddl in
    let q = Difftest.Query_gen.nested_or_spec ~rng cat in
    let r = A1.analyze cat q in
    Alcotest.(check bool) "MAYBE on every nested-OR case" true
      (r.A1.answer = A1.Maybe)
  done

let db_for_props =
  lazy (Workload.Generator.supplier_db ~suppliers:30 ~parts_per_supplier:4 ())

let queries_for_engine_check =
  [ example1; example2; example4; example6;
    "SELECT DISTINCT P.PNO, P.SNO FROM PARTS P";
    "SELECT DISTINCT P.COLOR FROM PARTS P";
    "SELECT DISTINCT S.SCITY FROM SUPPLIER S";
    "SELECT DISTINCT S.SNO, P.PNO FROM SUPPLIER S, PARTS P WHERE S.SNO = P.SNO" ]

let test_analysis_sound_on_engine () =
  let db = Lazy.force db_for_props in
  let hosts = [ ("SUPPLIER_NO", Value.Int 3); ("SUPPLIER_NAME", Value.String "SUPPLIER-1") ] in
  List.iter
    (fun q ->
      let spec = parse q in
      let dist = Engine.Exec.run_query db ~hosts (Sql.Ast.Spec spec) in
      let all =
        Engine.Exec.run_query db ~hosts
          (Sql.Ast.Spec { spec with Sql.Ast.distinct = Sql.Ast.All })
      in
      if A1.distinct_is_redundant catalog spec then
        Alcotest.(check bool)
          (Printf.sprintf "ALL = DISTINCT for %s" q)
          true
          (Engine.Relation.equal_bags dist all))
    queries_for_engine_check

(* And completeness evidence on this sample: when analysis says NO, the
   exact checker agrees there is a duplicate-producing instance (these
   queries use only equality predicates, where Algorithm 1 is expected to
   be precise). *)
let test_exact_agrees_on_negatives () =
  List.iter
    (fun q ->
      let spec = parse q in
      if not (FdA.distinct_is_redundant catalog spec) then
        Alcotest.(check bool)
          (Printf.sprintf "duplicable: %s" q)
          false (exact_unique q))
    queries_for_engine_check

let () =
  Alcotest.run "uniqueness"
    [
      ( "algorithm1",
        [
          Alcotest.test_case "example 1" `Quick test_example1;
          Alcotest.test_case "example 2" `Quick test_example2;
          Alcotest.test_case "example 4" `Quick test_example4;
          Alcotest.test_case "example 6" `Quick test_example6;
          Alcotest.test_case "example 5 trace" `Quick test_example5_trace;
          Alcotest.test_case "trace shows deletions" `Quick
            test_trace_shows_deletions;
          Alcotest.test_case "no predicate, full key" `Quick
            test_no_predicate_full_key;
          Alcotest.test_case "partial composite key" `Quick
            test_composite_key_partial;
          Alcotest.test_case "key via constant" `Quick test_key_via_constant;
          Alcotest.test_case "key via transitivity" `Quick
            test_key_via_transitivity;
          Alcotest.test_case "disjunction rejected" `Quick
            test_disjunction_rejected;
          Alcotest.test_case "inequality rejected" `Quick
            test_inequality_rejected;
          Alcotest.test_case "unsatisfiable predicate" `Quick
            test_unsatisfiable_predicate;
          Alcotest.test_case "UNIQUE candidate key" `Quick
            test_candidate_key_unique_clause;
          Alcotest.test_case "three tables" `Quick test_three_tables;
          Alcotest.test_case "three tables, one unkeyed" `Quick
            test_three_tables_missing_one;
          Alcotest.test_case "budget blowout answers MAYBE" `Quick
            test_budget_maybe;
          Alcotest.test_case "budget knob" `Quick test_budget_knob;
          Alcotest.test_case "nested-OR generator blows the budget" `Quick
            test_nested_or_generator_blows_budget;
        ] );
      ( "fd-analysis",
        [
          Alcotest.test_case "agrees on examples" `Quick
            test_fd_agrees_on_examples;
          Alcotest.test_case "detects key-dependency chains" `Quick
            test_fd_beats_algorithm1;
        ] );
      ( "exact",
        [
          Alcotest.test_case "examples" `Quick test_exact_examples;
          Alcotest.test_case "counterexample is concrete" `Quick
            test_exact_counterexample_is_concrete;
          Alcotest.test_case "non-key duplicates" `Quick
            test_exact_detects_nonkey_duplicates;
          Alcotest.test_case "range predicates" `Quick
            test_exact_range_predicates;
          Alcotest.test_case "budget guard" `Quick test_exact_too_large;
        ] );
      ( "cross-validation",
        Alcotest.test_case "analysis sound on engine" `Quick
          test_analysis_sound_on_engine
        :: Alcotest.test_case "exact agrees on negatives" `Quick
             test_exact_agrees_on_negatives
        :: List.map QCheck_alcotest.to_alcotest
             [ prop_algorithm1_sound_vs_exact; prop_fd_sound_vs_exact;
               prop_fd_dominates_algorithm1; prop_algorithm1_monotone;
               prop_paper_strict_is_weaker ] );
    ]
