(* Markdown link checker for the repo's own documentation.

   For every [text](target) in the files given on the command line:
   - external targets (http://, https://, mailto:) are ignored;
   - a relative target must resolve to an existing file, relative to the
     directory of the file containing the link;
   - a #fragment (in-file or cross-file) must match a heading of the target
     document, under GitHub's slug rules (lowercase, punctuation dropped,
     spaces to hyphens).

   Prints every broken link and exits 1 if there are any, so CI can run
   simply: dune exec tools/check_links.exe -- README.md doc/*.md *)

let read_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let slug_of_heading line =
  let text =
    let n = String.length line in
    let i = ref 0 in
    while !i < n && line.[!i] = '#' do incr i done;
    String.trim (String.sub line !i (n - !i))
  in
  let b = Buffer.create (String.length text) in
  String.iter
    (fun c ->
      match Char.lowercase_ascii c with
      | ('a' .. 'z' | '0' .. '9') as c -> Buffer.add_char b c
      | ' ' | '-' -> Buffer.add_char b '-'
      | _ -> ())
    text;
  Buffer.contents b

let headings text =
  String.split_on_char '\n' text
  |> List.filter (fun l -> String.length l > 0 && l.[0] = '#')
  |> List.map slug_of_heading

(* [text](target) occurrences; a one-line scanner is enough for our docs
   (no reference-style links, no nested brackets in link text) *)
let links text =
  let n = String.length text in
  let out = ref [] in
  let i = ref 0 in
  while !i < n do
    if text.[!i] = '[' then begin
      match String.index_from_opt text !i ']' with
      | Some j when j + 1 < n && text.[j + 1] = '(' -> (
        match String.index_from_opt text (j + 1) ')' with
        | Some k ->
          out := String.sub text (j + 2) (k - j - 2) :: !out;
          i := k + 1
        | None -> incr i)
      | _ -> incr i
    end
    else incr i
  done;
  List.rev !out

let is_external t =
  List.exists
    (fun p -> String.length t >= String.length p
              && String.sub t 0 (String.length p) = p)
    [ "http://"; "https://"; "mailto:" ]

let check_file path =
  let text = read_file path in
  let dir = Filename.dirname path in
  let errors = ref [] in
  List.iter
    (fun target ->
      if not (is_external target) then begin
        let file, fragment =
          match String.index_opt target '#' with
          | Some 0 -> ("", String.sub target 1 (String.length target - 1))
          | Some i ->
            ( String.sub target 0 i,
              String.sub target (i + 1) (String.length target - i - 1) )
          | None -> (target, "")
        in
        let resolved =
          if file = "" then path else Filename.concat dir file
        in
        if not (Sys.file_exists resolved) then
          errors := Printf.sprintf "%s: broken link (%s)" path target :: !errors
        else if fragment <> "" && Sys.is_regular_file resolved
                && Filename.check_suffix resolved ".md"
                && not (List.mem fragment (headings (read_file resolved)))
        then
          errors :=
            Printf.sprintf "%s: missing anchor #%s in %s" path fragment
              resolved
            :: !errors
      end)
    (links text);
  List.rev !errors

let () =
  let files =
    match Array.to_list Sys.argv with
    | _ :: (_ :: _ as fs) -> fs
    | _ ->
      prerr_endline "usage: check_links FILE.md ...";
      exit 2
  in
  let errors = List.concat_map check_file files in
  List.iter prerr_endline errors;
  if errors <> [] then exit 1;
  Printf.printf "check_links: %d files, all intra-repo links resolve\n"
    (List.length files)
